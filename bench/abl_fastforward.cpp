// Ablation: fast-forward accuracy and speedup. Runs the same SGEMM
// campaign with and without the steady-state fast path and compares both
// the wall-clock cost and the resulting statistics. The fast path must be
// a pure optimization: the analysis results should be indistinguishable.
#include <chrono>

#include "bench_util.hpp"

using namespace gpuvar;

namespace {

struct Outcome {
  double wall_s = 0.0;
  VariabilityReport report;
};

Outcome campaign(const Cluster& cluster, bool fast_forward) {
  auto cfg = default_config(
      cluster, sgemm_workload(25536, bench::sgemm_reps()), 1);
  cfg.run_options.sim.fast_forward = fast_forward;
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = run_experiment(cluster, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  Outcome o;
  o.wall_s = std::chrono::duration<double>(t1 - t0).count();
  o.report = analyze_variability(result.frame);
  return o;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "fast-forward accuracy & speedup");
  Cluster vortex(vortex_spec());
  const auto fast = campaign(vortex, true);
  const auto full = campaign(vortex, false);

  std::printf("%-14s %10s %12s %12s %12s\n", "mode", "wall s", "perf med",
              "perf var %", "power med");
  std::printf("%-14s %10.2f %12.1f %12.2f %12.1f\n", "full-tick",
              full.wall_s, full.report.perf.box.median,
              full.report.perf.variation_pct, full.report.power.box.median);
  std::printf("%-14s %10.2f %12.1f %12.2f %12.1f\n", "fast-forward",
              fast.wall_s, fast.report.perf.box.median,
              fast.report.perf.variation_pct, fast.report.power.box.median);
  std::printf("\nspeedup: %.1fx;  perf-median delta: %.3f%%;  "
              "variation delta: %.2f points\n",
              full.wall_s / std::max(1e-9, fast.wall_s),
              (fast.report.perf.box.median / full.report.perf.box.median -
               1.0) * 100.0,
              fast.report.perf.variation_pct -
                  full.report.perf.variation_pct);
  return 0;
}
