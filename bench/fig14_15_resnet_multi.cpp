// Figures 14 & 15: multi-GPU ResNet-50 training on Longhorn.
//
// Paper shape: the *largest* performance variation of the study (22%);
// frequency pinned at 1530 MHz for most nodes; enormous power variability
// (~104%) including stragglers as low as 76 W; rho(perf,freq) ~ -0.01 and
// rho(perf,power) ~ -0.48; the SGEMM outlier cabinet (c002) reappears.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figures 14-15",
                      "multi-GPU ResNet-50 on TACC Longhorn");
  Cluster longhorn(longhorn_spec());
  auto cfg = default_config(
      longhorn, resnet50_multi_workload(bench::ml_iterations()),
      bench::runs_per_gpu());
  const auto result = run_experiment(longhorn, cfg);
  bench::print_figure_block(result, GroupBy::kCabinet);

  print_section(std::cout, "Figure 15 scatter plots");
  print_scatter(std::cout, result.frame, Metric::kFreq, Metric::kPerf);
  print_scatter(std::cout, result.frame, Metric::kPower, Metric::kPerf);

  print_section(std::cout, "cross-workload repeat offenders (Takeaway 5)");
  const auto sgemm_result = bench::sgemm_experiment(longhorn);
  FlagOptions fopts;
  fopts.slowdown_temp = longhorn.sku().slowdown_temp;
  const std::vector<FlagReport> reports{
      flag_anomalies(sgemm_result.frame, fopts),
      flag_anomalies(result.frame, fopts)};
  const auto offenders = repeat_offenders(reports, 2);
  std::printf("  %zu GPUs flagged by BOTH SGEMM and ResNet-50:\n",
              offenders.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(8, offenders.size());
       ++i) {
    std::printf("    %s (severity %.1f)\n", offenders[i].name.c_str(),
                offenders[i].severity);
  }

  print_section(std::cout, "user impact (SVII)");
  std::printf("  %-6s %18s %18s %16s\n", "GPUs", "P(any >6% slow)",
              "E[slowdown]", "P95 slowdown");
  for (const auto& row : impact_table(result.frame, 8)) {
    std::printf("  %-6d %17.0f%% %17.2fx %15.2fx\n", row.gpus_per_job,
                row.p_any_slow * 100.0, row.expected_slowdown,
                row.p95_slowdown);
  }
  return 0;
}
