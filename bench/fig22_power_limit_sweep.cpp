// Figure 22: SGEMM performance variation on CloudLab while sweeping the
// enforced power limit from 100 W to 300 W (requires admin rights on real
// systems; §VI-B).
//
// Paper shape: kernel durations increase as the limit drops, and the
// variability *and* outlier count grow — 18% at 150 W versus 9% at 300 W
// (DVFS is less optimized for extreme budgets).
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figure 22",
                      "SGEMM under power limits on NSF CloudLab");
  Cluster cloudlab(cloudlab_spec());
  std::printf("%8s %10s %8s %10s %10s\n", "limit W", "median ms", "var %",
              "freq MHz", "power W");

  std::vector<stats::NamedSeries> series;
  for (double limit : {300.0, 250.0, 200.0, 150.0, 125.0, 100.0}) {
    auto cfg = default_config(
        cloudlab, sgemm_workload(25536, bench::sgemm_reps()),
        std::max(3, bench::runs_per_gpu()));
    cfg.run_options.power_limit_override = Watts{limit};
    const auto result = run_experiment(cloudlab, cfg);
    const auto report = analyze_variability(result.frame);
    std::printf("%8.0f %10.0f %8.2f %10.0f %10.0f\n", limit,
                report.perf.box.median, report.perf.variation_pct,
                report.freq.box.median, report.power.box.median);
    char label[16];
    std::snprintf(label, sizeof(label), "%3.0fW", limit);
    const auto perf = metric_column(result.frame, Metric::kPerf);
    series.push_back(stats::NamedSeries{
        label, std::vector<double>(perf.begin(), perf.end())});
  }
  std::printf("\nkernel duration by power limit:\n");
  std::cout << stats::render_box_chart(series,
                                       stats::BoxChartOptions{58, "ms", true});
  std::printf(
      "\nPaper shape: durations rise and variability roughly doubles "
      "between 300 W and 150 W caps.\n");
  return 0;
}
