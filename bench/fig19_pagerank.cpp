// Figure 19: PageRank (rajat30-like SpMV) on Longhorn.
//
// Paper shape: ~1% performance variation, frequency pinned, ~22% power
// variation, temperature Q1..Q3 ~8 C — memory-latency-bound work can run
// on the worst nodes without penalty (Takeaway 8).
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figure 19", "PageRank on TACC Longhorn");
  Cluster longhorn(longhorn_spec());
  auto cfg = default_config(longhorn, pagerank_workload(20),
                            bench::runs_per_gpu());
  const auto result = run_experiment(longhorn, cfg);
  bench::print_figure_block(result, GroupBy::kCabinet);

  const auto report = analyze_variability(result.frame);
  print_section(std::cout, "Takeaway 8 checks");
  std::printf("  perf variation %.2f%% (paper ~1%%), power variation %.1f%%"
              " (paper ~22%%)\n",
              report.perf.variation_pct, report.power.variation_pct);
  const auto& counters = result.frame.counters(0);
  std::printf("  memory-dependency stalls: %.0f%% (paper: 61%%; LAMMPS 7%%,"
              " SGEMM 3%%)\n",
              counters.mem_stall_frac * 100.0);
  const auto advice = advise_placement(counters);
  std::printf("  class: %s — %s\n", to_string(advice.app_class).c_str(),
              advice.note.c_str());
  return 0;
}
