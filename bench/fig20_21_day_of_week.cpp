// Figures 20 & 21: SGEMM variability per day of the week on Summit and
// Longhorn.
//
// Paper shape: the variation is essentially identical on every day (the
// effect is persistent hardware, not a transient of when you measure);
// only the count of outliers fluctuates a little day to day.
#include "bench_util.hpp"

using namespace gpuvar;

namespace {

void week_of(const ClusterSpec& spec) {
  Cluster cluster(spec);
  std::printf("\n%s:\n", spec.name.c_str());
  std::vector<stats::NamedSeries> series;
  for (int day = 0; day < 7; ++day) {
    const auto result = bench::sgemm_experiment(cluster, day);
    const auto report = analyze_variability(result.frame);
    std::printf("  %s: perf variation %5.2f%%  median %6.0f ms  power "
                "outliers %3zu  perf outliers %3zu\n",
                group_label(GroupBy::kDayOfWeek, day).c_str(),
                report.perf.variation_pct, report.perf.box.median,
                report.power.box.outlier_count(),
                report.perf.box.outlier_count());
    const auto perf_col = metric_column(result.frame, Metric::kPerf);
    std::vector<double> perf(perf_col.begin(), perf_col.end());
    series.push_back(stats::NamedSeries{
        group_label(GroupBy::kDayOfWeek, day), std::move(perf)});
  }
  std::cout << stats::render_box_chart(series,
                                       stats::BoxChartOptions{60, "ms", true});
}

}  // namespace

int main() {
  bench::print_header("Figures 20-21",
                      "day-of-week stability (Summit & Longhorn)");
  week_of(summit_spec(0x5077, 8, 29,
                      std::max(1, bench::summit_nodes_per_column() / 2), 6));
  week_of(longhorn_spec());
  std::printf(
      "\nTakeaway 9: variability is consistent throughout the week — the "
      "observations hold regardless of when experiments run.\n");
  return 0;
}
