#include "gpu/sku.hpp"
#include "common/units.hpp"

#include <gtest/gtest.h>

namespace gpuvar {
namespace {

TEST(Sku, V100MatchesDatasheet) {
  const auto sku = make_v100_sxm2();
  EXPECT_EQ(sku.vendor, Vendor::kNvidia);
  EXPECT_EQ(sku.sm_count, 80);
  EXPECT_DOUBLE_EQ(sku.tdp.value(), 300.0);
  EXPECT_DOUBLE_EQ(sku.max_mhz.value(), 1530.0);
  // Peak fp32 at boost: 80 * 128 * 1.53 GHz = 15.7 TFLOP/s.
  EXPECT_NEAR(sku.peak_flops(MegaHertz{1530.0}), 15.67e12, 0.05e12);
  EXPECT_DOUBLE_EQ(sku.slowdown_temp.value(), 87.0);
  EXPECT_DOUBLE_EQ(sku.shutdown_temp.value(), 90.0);
}

TEST(Sku, Rtx5000MatchesDatasheet) {
  const auto sku = make_rtx5000();
  EXPECT_DOUBLE_EQ(sku.tdp.value(), 230.0);
  EXPECT_GT(sku.max_mhz, MegaHertz{1530.0});  // Turing boosts higher than Volta
  // ~11.2 TFLOP/s fp32.
  EXPECT_NEAR(sku.peak_flops(MegaHertz{1815.0}), 11.15e12, 0.1e12);
  EXPECT_DOUBLE_EQ(sku.slowdown_temp.value(), 93.0);
}

TEST(Sku, Mi60MatchesDatasheet) {
  const auto sku = make_mi60();
  EXPECT_EQ(sku.vendor, Vendor::kAmd);
  EXPECT_DOUBLE_EQ(sku.tdp.value(), 300.0);
  EXPECT_DOUBLE_EQ(sku.max_mhz.value(), 1800.0);
  // ~14.7 TFLOP/s fp32 at peak.
  EXPECT_NEAR(sku.peak_flops(MegaHertz{1800.0}), 14.7e12, 0.1e12);
  EXPECT_DOUBLE_EQ(sku.slowdown_temp.value(), 100.0);
  EXPECT_DOUBLE_EQ(sku.shutdown_temp.value(), 105.0);
}

TEST(Sku, AmdLadderIsCoarserThanNvidia) {
  // §IV-D: "the MI60s have coarser frequency levels than the NVIDIA
  // V100s".
  EXPECT_GT(make_mi60().ladder_step_mhz, 4 * make_v100_sxm2().ladder_step_mhz);
}

TEST(Sku, LadderIsAscendingAndBounded) {
  for (const auto& sku : {make_v100_sxm2(), make_rtx5000(), make_mi60()}) {
    const auto ladder = sku.frequency_ladder();
    ASSERT_GE(ladder.size(), 2u);
    EXPECT_DOUBLE_EQ(ladder.front().value(), sku.min_mhz.value());
    EXPECT_NEAR(ladder.back().value(), sku.max_mhz.value(), 1e-9);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
      EXPECT_GT(ladder[i], ladder[i - 1]);
    }
  }
}

TEST(Sku, VoltageCurveMonotone) {
  const auto sku = make_v100_sxm2();
  EXPECT_DOUBLE_EQ(sku.voltage_at(sku.min_mhz).value(), sku.v_min.value());
  EXPECT_DOUBLE_EQ(sku.voltage_at(sku.max_mhz).value(), sku.v_max.value());
  EXPECT_LT(sku.voltage_at(MegaHertz{1200.0}), sku.voltage_at(MegaHertz{1400.0}));
  // Clamped outside the ladder.
  EXPECT_DOUBLE_EQ(sku.voltage_at(MegaHertz{100.0}).value(), sku.v_min.value());
  EXPECT_DOUBLE_EQ(sku.voltage_at(MegaHertz{9999.0}).value(), sku.v_max.value());
}

TEST(Sku, SlowdownBelowShutdown) {
  for (const auto& sku : {make_v100_sxm2(), make_rtx5000(), make_mi60()}) {
    EXPECT_LT(sku.slowdown_temp, sku.shutdown_temp) << sku.name;
  }
}

TEST(Sku, VendorNames) {
  EXPECT_EQ(to_string(Vendor::kNvidia), "NVIDIA");
  EXPECT_EQ(to_string(Vendor::kAmd), "AMD");
}

TEST(Sku, FullTiltGemmExceedsTdp) {
  // The entire DVFS story requires that an unconstrained boost-clock GEMM
  // would exceed the TDP — otherwise no throttling, no variability.
  for (const auto& sku : {make_v100_sxm2(), make_rtx5000(), make_mi60()}) {
    const double v = sku.voltage_at(sku.max_mhz).value();
    const double dyn = sku.c_eff * v * v * sku.max_mhz.value();
    EXPECT_GT(Watts{dyn} + sku.leakage_at_ref + sku.idle_power, sku.tdp)
        << sku.name;
  }
}

}  // namespace
}  // namespace gpuvar
