// RecordFrame: the columnar data plane (telemetry/frame.hpp).
//
// The contract under test is bit-identity, not approximation: the frame
// must produce exactly the same bytes/doubles as the row-oriented
// reference implementations kept below as test-local oracles (the
// library's bulk row adapters are gone), the FrameBuilder merge must be
// independent of how rows were partitioned into buckets, and the frame
// CSV must round-trip losslessly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/compare.hpp"
#include "core/correlate.hpp"
#include "core/drift.hpp"
#include "core/flagging.hpp"
#include "core/markdown_report.hpp"
#include "core/projection.hpp"
#include "core/user_impact.hpp"
#include "core/variability.hpp"
#include "stats/quantile.hpp"
#include "telemetry/export.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {
namespace {

/// Deterministic synthetic campaign. Rows arrive run-major and visit
/// GPUs in a non-monotone order so interning order != gpu_index order —
/// the case where frame/row grouping could plausibly diverge.
std::vector<RunRecord> synth_records(std::size_t gpus, int runs) {
  std::vector<RunRecord> out;
  out.reserve(gpus * static_cast<std::size_t>(runs));
  for (int run = 0; run < runs; ++run) {
    for (std::size_t i = 0; i < gpus; ++i) {
      const std::size_t g = (i * 7 + 3) % gpus;
      RunRecord r;
      r.gpu_index = 1000 + g;
      r.loc.node = static_cast<int>(g / 4);
      r.loc.gpu = static_cast<int>(g % 4);
      r.loc.cabinet = static_cast<int>(g / 16);
      r.loc.row = static_cast<int>(g % 3);
      r.loc.column = static_cast<int>(g % 5);
      r.loc.node_in_group = static_cast<int>(g % 8);
      r.loc.name = "c" + std::to_string(g / 16) + "-n" +
                   std::to_string(g / 4) + "-g" + std::to_string(g % 4);
      r.run_index = run;
      r.day_of_week = static_cast<int>((g + static_cast<std::size_t>(run)) % 7);
      const double jitter = 0.0625 * static_cast<double>((g * 13 + static_cast<std::size_t>(run) * 5) % 11);
      r.perf_ms = 100.0 + 0.125 * static_cast<double>(g) + 3.0 * run + jitter;
      r.freq_mhz = 1410.0 - 0.25 * static_cast<double>(g % 17) - run;
      r.power_w = 300.0 + 0.5 * static_cast<double>(g % 9) - 0.25 * run;
      r.temp_c = 60.0 + 0.03125 * static_cast<double>(g) + run;
      r.counters.fu_util = 0.5 + 0.001 * static_cast<double>(g % 100);
      r.counters.dram_util = 0.25 + 0.002 * static_cast<double>(g % 50);
      r.counters.mem_stall_frac = 0.125 + 0.001 * static_cast<double>(run);
      r.counters.exec_stall_frac = 0.0625;
      out.push_back(std::move(r));
    }
  }
  return out;
}


/// Test-local frame construction from rows (the library's bulk row
/// adapters are gone; streaming append_row is the construction API).
RecordFrame frame_from(const std::vector<RunRecord>& rows,
                       std::size_t start = 0,
                       std::size_t count = std::size_t(-1)) {
  const std::size_t end = std::min(rows.size(), count == std::size_t(-1)
                                                    ? rows.size()
                                                    : start + count);
  RecordFrame f;
  f.reserve(end - start);
  for (std::size_t i = start; i < end; ++i) f.append_row(rows[i]);
  return f;
}

/// Row-oriented oracle for metric_column: the original AoS extraction,
/// kept here to pin the frame path bit-for-bit.
std::vector<double> rows_metric_column(const std::vector<RunRecord>& records,
                                       Metric m) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(metric_value(r, m));
  return out;
}

/// Row-oriented oracle for per_gpu_medians: the original map-per-GPU
/// aggregation the counting-sort frame path must reproduce exactly.
std::vector<GpuAggregate> rows_per_gpu_medians(
    const std::vector<RunRecord>& records) {
  std::map<std::size_t, std::vector<const RunRecord*>> by_gpu;
  for (const auto& r : records) by_gpu[r.gpu_index].push_back(&r);

  std::vector<GpuAggregate> out;
  out.reserve(by_gpu.size());
  for (const auto& [gpu, rs] : by_gpu) {
    GpuAggregate agg;
    agg.gpu_index = gpu;
    agg.loc = rs.front()->loc;
    agg.runs = static_cast<int>(rs.size());
    std::vector<double> perf, freq, power, temp;
    perf.reserve(rs.size());
    for (const RunRecord* r : rs) {
      perf.push_back(r->perf_ms);
      freq.push_back(r->freq_mhz);
      power.push_back(r->power_w);
      temp.push_back(r->temp_c);
    }
    agg.perf_ms = stats::median(perf);
    agg.freq_mhz = stats::median(freq);
    agg.power_w = stats::median(power);
    agg.temp_c = stats::median(temp);
    out.push_back(std::move(agg));
  }
  return out;
}

void expect_frames_identical(const RecordFrame& a, const RecordFrame& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.gpu_count(), b.gpu_count());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.perf_ms()[i], b.perf_ms()[i]);
    EXPECT_EQ(a.freq_mhz()[i], b.freq_mhz()[i]);
    EXPECT_EQ(a.power_w()[i], b.power_w()[i]);
    EXPECT_EQ(a.temp_c()[i], b.temp_c()[i]);
    EXPECT_EQ(a.gpu_ids()[i], b.gpu_ids()[i]);
    EXPECT_EQ(a.run_indices()[i], b.run_indices()[i]);
    EXPECT_EQ(a.days_of_week()[i], b.days_of_week()[i]);
  }
  for (std::uint32_t id = 0; id < a.gpu_count(); ++id) {
    EXPECT_EQ(a.gpu(id).gpu_index, b.gpu(id).gpu_index);
    EXPECT_EQ(a.gpu(id).loc.name, b.gpu(id).loc.name);
  }
}

TEST(RecordFrame, RoundTripsRows) {
  const auto records = synth_records(24, 3);
  const auto frame = frame_from(records);
  ASSERT_EQ(frame.size(), records.size());
  EXPECT_EQ(frame.gpu_count(), 24u);
  std::vector<RunRecord> back;
  for (std::size_t i = 0; i < frame.size(); ++i) back.push_back(frame.row(i));
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].gpu_index, records[i].gpu_index);
    EXPECT_EQ(back[i].loc.name, records[i].loc.name);
    EXPECT_EQ(back[i].loc.node, records[i].loc.node);
    EXPECT_EQ(back[i].run_index, records[i].run_index);
    EXPECT_EQ(back[i].day_of_week, records[i].day_of_week);
    EXPECT_EQ(back[i].perf_ms, records[i].perf_ms);
    EXPECT_EQ(back[i].freq_mhz, records[i].freq_mhz);
    EXPECT_EQ(back[i].power_w, records[i].power_w);
    EXPECT_EQ(back[i].temp_c, records[i].temp_c);
    EXPECT_EQ(back[i].counters.fu_util, records[i].counters.fu_util);
  }
}

TEST(RecordFrame, MetricViewsAreZeroCopyAndMatchRows) {
  const auto records = synth_records(16, 2);
  const auto frame = frame_from(records);
  // Same underlying storage for repeated calls: a true view, not a copy.
  EXPECT_EQ(frame.perf_ms().data(), frame.metric(Metric::kPerf).data());
  EXPECT_EQ(frame.metric(Metric::kPerf).data(),
            metric_column(frame, Metric::kPerf).data());
  for (Metric m : {Metric::kPerf, Metric::kFreq, Metric::kPower,
                   Metric::kTemp}) {
    const auto legacy = rows_metric_column(records, m);
    const auto view = metric_column(frame, m);
    ASSERT_EQ(legacy.size(), view.size());
    for (std::size_t i = 0; i < view.size(); ++i) {
      EXPECT_EQ(legacy[i], view[i]);
    }
  }
}

TEST(RecordFrame, BuilderIsPartitionInvariant) {
  const auto records = synth_records(20, 4);
  // Reference: everything through one bucket.
  FrameBuilder ref(1);
  for (const auto& r : records) ref.bucket(0).append_row(r);
  const RecordFrame expected = ref.finish();

  // Contiguous slices across varying bucket counts (uneven on purpose):
  // the merged frame must be identical however the stream was split.
  for (std::size_t buckets : {2u, 3u, 7u, 16u}) {
    FrameBuilder b(buckets);
    for (std::size_t i = 0; i < records.size(); ++i) {
      const std::size_t slice = i * buckets / records.size();
      b.bucket(slice).append_row(records[i]);
    }
    const RecordFrame merged = b.finish();
    expect_frames_identical(expected, merged);
  }
}

TEST(RecordFrame, ChunkedAppendMatchesBulkBuild) {
  const auto records = synth_records(12, 3);
  const auto expected = frame_from(records);
  RecordFrame chunked;
  for (std::size_t start = 0; start < records.size(); start += 7) {
    const std::size_t len = std::min<std::size_t>(7, records.size() - start);
    const auto chunk = frame_from(records, start, len);
    chunked.append(chunk);
  }
  expect_frames_identical(expected, chunked);
}

TEST(RecordFrame, PerGpuMediansBitIdenticalToRowPath) {
  const auto records = synth_records(31, 5);
  const auto frame = frame_from(records);
  const auto rows = rows_per_gpu_medians(records);
  const auto cols = per_gpu_medians(frame);
  ASSERT_EQ(rows.size(), cols.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].gpu_index, cols[i].gpu_index);
    EXPECT_EQ(rows[i].loc.name, cols[i].loc.name);
    EXPECT_EQ(rows[i].runs, cols[i].runs);
    EXPECT_EQ(rows[i].perf_ms, cols[i].perf_ms);
    EXPECT_EQ(rows[i].freq_mhz, cols[i].freq_mhz);
    EXPECT_EQ(rows[i].power_w, cols[i].power_w);
    EXPECT_EQ(rows[i].temp_c, cols[i].temp_c);
  }
}

TEST(RecordFrame, AnalysesInvariantUnderRowMaterialization) {
  // Materializing every row (frame.row) and re-appending it must yield a
  // frame every analysis treats as bit-identical — the escape hatch for
  // row-shaped consumers cannot lose or perturb anything.
  const auto records = synth_records(28, 6);
  const auto frame = frame_from(records);
  RecordFrame rows;
  rows.reserve(frame.size());
  for (std::size_t i = 0; i < frame.size(); ++i) rows.append_row(frame.row(i));

  const auto va = analyze_variability(rows);
  const auto vb = analyze_variability(frame);
  EXPECT_EQ(va.records, vb.records);
  EXPECT_EQ(va.gpus, vb.gpus);
  EXPECT_EQ(va.perf.box.median, vb.perf.box.median);
  EXPECT_EQ(va.perf.variation_pct, vb.perf.variation_pct);
  EXPECT_EQ(va.temp.box.hi_whisker, vb.temp.box.hi_whisker);

  const auto ra = per_gpu_repeatability(rows);
  const auto rb = per_gpu_repeatability(frame);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].gpu_index, rb[i].gpu_index);
    EXPECT_EQ(ra[i].median_perf_ms, rb[i].median_perf_ms);
    EXPECT_EQ(ra[i].variation_pct, rb[i].variation_pct);
  }

  EXPECT_EQ(estimate_run_noise_ms(rows), estimate_run_noise_ms(frame));

  const auto da = detect_performance_drift(rows);
  const auto db = detect_performance_drift(frame);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].gpu_index, db[i].gpu_index);
    EXPECT_EQ(da[i].drift_pct, db[i].drift_pct);
  }

  const auto fa = flag_anomalies(rows);
  const auto fb = flag_anomalies(frame);
  ASSERT_EQ(fa.gpus.size(), fb.gpus.size());
  for (std::size_t i = 0; i < fa.gpus.size(); ++i) {
    EXPECT_EQ(fa.gpus[i].gpu_index, fb.gpus[i].gpu_index);
    EXPECT_EQ(fa.gpus[i].severity, fb.gpus[i].severity);
  }

  const auto ca = correlate_metrics(rows);
  const auto cb = correlate_metrics(frame);
  EXPECT_EQ(ca.perf_temp.rho, cb.perf_temp.rho);
  EXPECT_EQ(ca.perf_power.spearman, cb.perf_power.spearman);
  EXPECT_EQ(ca.power_temp.rho, cb.power_temp.rho);

  const auto ja = job_impact(rows, 4);
  const auto jb = job_impact(frame, 4);
  EXPECT_EQ(ja.expected_slowdown, jb.expected_slowdown);
  EXPECT_EQ(ja.p95_slowdown, jb.p95_slowdown);
  EXPECT_EQ(ja.p_any_slow, jb.p_any_slow);

  const auto pa = project_to_cluster_size(rows, 1024);
  const auto pb = project_to_cluster_size(frame, 1024);
  EXPECT_EQ(pa.source_variation_pct, pb.source_variation_pct);
  EXPECT_EQ(pa.projected_variation_pct, pb.projected_variation_pct);

  // The full rendered report is the strongest equality: every table, to
  // the byte. (Bootstrap off: its resampling draws are seeded identically
  // either way, but 0 keeps the test fast.)
  MarkdownReportOptions opts;
  opts.bootstrap_resamples = 0;
  std::ostringstream md_rows, md_frame;
  write_markdown_report(md_rows, rows, opts);
  write_markdown_report(md_frame, frame, opts);
  EXPECT_EQ(md_rows.str(), md_frame.str());
}

TEST(RecordFrame, CompareCampaignsPartitionInvariant) {
  const auto before = synth_records(20, 3);
  auto after = synth_records(20, 3);
  for (auto& r : after) r.perf_ms *= 1.01;
  // Bulk-built frames vs chunk-appended frames: same comparison bytes.
  RecordFrame before_chunked, after_chunked;
  for (std::size_t start = 0; start < before.size(); start += 11) {
    before_chunked.append(frame_from(before, start, 11));
    after_chunked.append(frame_from(after, start, 11));
  }
  const auto via_rows = compare_campaigns(before_chunked, after_chunked);
  const auto via_frames =
      compare_campaigns(frame_from(before), frame_from(after));
  EXPECT_EQ(via_rows.matched_gpus, via_frames.matched_gpus);
  EXPECT_EQ(via_rows.median_delta_pct, via_frames.median_delta_pct);
  EXPECT_EQ(via_rows.noise_floor_pct, via_frames.noise_floor_pct);
  ASSERT_EQ(via_rows.significant.size(), via_frames.significant.size());
  for (std::size_t i = 0; i < via_rows.significant.size(); ++i) {
    EXPECT_EQ(via_rows.significant[i].name, via_frames.significant[i].name);
    EXPECT_EQ(via_rows.significant[i].delta_pct,
              via_frames.significant[i].delta_pct);
  }
}

TEST(RecordFrame, SelectPreservesRowsAndReinterns) {
  const auto records = synth_records(10, 2);
  const auto frame = frame_from(records);
  std::vector<std::size_t> odd_rows;
  for (std::size_t i = 1; i < frame.size(); i += 2) odd_rows.push_back(i);
  const auto sub = frame.select(odd_rows);
  ASSERT_EQ(sub.size(), odd_rows.size());
  for (std::size_t i = 0; i < odd_rows.size(); ++i) {
    EXPECT_EQ(sub.perf_ms()[i], frame.perf_ms()[odd_rows[i]]);
    EXPECT_EQ(sub.gpu_index(i), frame.gpu_index(odd_rows[i]));
    EXPECT_EQ(sub.loc(i).name, frame.loc(odd_rows[i]).name);
  }
  EXPECT_LE(sub.gpu_count(), frame.gpu_count());
}

TEST(RecordFrame, CsvRoundTripIsLossless) {
  const auto records = synth_records(18, 3);
  const auto frame = frame_from(records);

  std::ostringstream csv;
  export_frame_csv(csv, "synth", frame);
  std::istringstream in(csv.str());
  const auto back = import_results_frame(in);

  ASSERT_EQ(back.size(), frame.size());
  EXPECT_EQ(back.gpu_count(), frame.gpu_count());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(back.perf_ms()[i], frame.perf_ms()[i]);
    EXPECT_EQ(back.freq_mhz()[i], frame.freq_mhz()[i]);
    EXPECT_EQ(back.power_w()[i], frame.power_w()[i]);
    EXPECT_EQ(back.temp_c()[i], frame.temp_c()[i]);
    EXPECT_EQ(back.fu_util()[i], frame.fu_util()[i]);
    EXPECT_EQ(back.run_index(i), frame.run_index(i));
    EXPECT_EQ(back.day_of_week(i), frame.day_of_week(i));
    EXPECT_EQ(back.loc(i).name, frame.loc(i).name);
    EXPECT_EQ(back.loc(i).node, frame.loc(i).node);
    EXPECT_EQ(back.loc(i).cabinet, frame.loc(i).cabinet);
    EXPECT_EQ(back.loc(i).gpu, frame.loc(i).gpu);
    EXPECT_EQ(back.loc(i).row, frame.loc(i).row);
    EXPECT_EQ(back.loc(i).column, frame.loc(i).column);
    EXPECT_EQ(back.loc(i).node_in_group, frame.loc(i).node_in_group);
  }

  // gpu_index is re-derived from the name on import, so frame equality is
  // asserted column-wise above; the serialized form itself must be a
  // fixed point: re-exporting the imported frame reproduces the bytes.
  std::ostringstream again;
  export_frame_csv(again, "synth", back);
  EXPECT_EQ(csv.str(), again.str());
}

TEST(RecordFrame, MemoryFootprintBeatsRowLayout) {
  const auto records = synth_records(256, 4);
  const auto frame = frame_from(records);
  std::size_t row_bytes = records.capacity() * sizeof(RunRecord);
  for (const auto& r : records) row_bytes += r.loc.name.capacity();
  EXPECT_LT(frame.memory_bytes(), row_bytes);
}

}  // namespace
}  // namespace gpuvar
