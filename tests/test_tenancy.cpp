#include "workloads/tenancy.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "thermal/cooling.hpp"
#include "workloads/runner.hpp"
#include "workloads/workload.hpp"

#include <gtest/gtest.h>

namespace gpuvar {
namespace {

class TenancyTest : public ::testing::Test {
 protected:
  Cluster cluster_{cloudlab_spec()};
  RunOptions opts_ = RunOptions::for_sku(cluster_.sku());
};

TEST_F(TenancyTest, DefaultCouplingOrdersByCoolingType) {
  EXPECT_GT(default_coupling(CoolingType::kAir),
            default_coupling(CoolingType::kMineralOil));
  EXPECT_GT(default_coupling(CoolingType::kMineralOil),
            default_coupling(CoolingType::kWater));
}

TEST_F(TenancyTest, SharedNodeRunsAllGpus) {
  const auto w = sgemm_workload(25536, 4);
  const auto results =
      run_on_node_shared(cluster_, 0, w, 0, opts_, TenancyOptions{});
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) EXPECT_GT(r.perf_ms, 0.0);
}

TEST_F(TenancyTest, RejectsMultiGpuWorkloads) {
  EXPECT_THROW(run_on_node_shared(cluster_, 0, resnet50_multi_workload(5), 0,
                                  opts_, TenancyOptions{}),
               std::invalid_argument);
}

TEST_F(TenancyTest, NeighboursRaiseTemperatureUnderAirCooling) {
  const auto w = sgemm_workload(25536, 8);
  const auto impacts =
      measure_tenancy_impact(cluster_, 1, w, opts_, TenancyOptions{});
  ASSERT_EQ(impacts.size(), 4u);
  for (const auto& imp : impacts) {
    // Three 290 W neighbours raise the effective inlet by ~10+ C.
    EXPECT_GT(imp.shared_temp, imp.exclusive_temp + Celsius{3.0});
    // Hotter silicon leaks more -> the TDP cap bites earlier -> slower.
    EXPECT_GE(imp.slowdown, 1.0);
  }
}

TEST_F(TenancyTest, CouplingStrengthControlsTheEffect) {
  const auto w = sgemm_workload(25536, 8);
  TenancyOptions none;
  none.coupling_c_per_w = 0.0;
  TenancyOptions strong;
  strong.coupling_c_per_w = 0.03;
  const auto base =
      run_on_node_shared(cluster_, 2, w, 0, opts_, none);
  const auto coupled =
      run_on_node_shared(cluster_, 2, w, 0, opts_, strong);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_GT(coupled[i].telemetry.temp.median,
              base[i].telemetry.temp.median + 5.0);
    EXPECT_GE(coupled[i].perf_ms, base[i].perf_ms * 0.999);
  }
}

TEST_F(TenancyTest, ZeroCouplingMatchesExclusiveRuns) {
  // With κ=0 and no preheat, the shared run differs from exclusive runs
  // only through the seed path of its run noise — runtimes stay within
  // the noise band.
  const auto w = sgemm_workload(25536, 6);
  TenancyOptions none;
  none.coupling_c_per_w = 0.0;
  const auto shared = run_on_node_shared(cluster_, 0, w, 0, opts_, none);
  const auto exclusive = run_on_node(cluster_, 0, w, 0, opts_);
  for (std::size_t i = 0; i < shared.size(); ++i) {
    EXPECT_NEAR(shared[i].perf_ms / exclusive[i].perf_ms, 1.0, 0.02);
  }
}

TEST_F(TenancyTest, TemporalPreheatSlowsTheFirstKernels) {
  const auto w = sgemm_workload(25536, 4);
  TenancyOptions cold;
  cold.coupling_c_per_w = 0.0;
  TenancyOptions hot = cold;
  hot.previous_job_power = Watts{295.0};  // previous tenant ran a GEMM
  const auto cold_run = run_on_node_shared(cluster_, 0, w, 0, opts_, cold);
  const auto hot_run = run_on_node_shared(cluster_, 0, w, 0, opts_, hot);
  for (std::size_t i = 0; i < cold_run.size(); ++i) {
    // Inherited heat -> more leakage -> earlier throttling -> slower or
    // equal, never faster.
    EXPECT_GE(hot_run[i].perf_ms, cold_run[i].perf_ms * 0.999);
    EXPECT_GT(hot_run[i].telemetry.temp.max,
              cold_run[i].telemetry.temp.min);
  }
}

TEST_F(TenancyTest, WaterCoolingIsNearlyImmune) {
  Cluster vortex(vortex_spec());
  const auto opts = RunOptions::for_sku(vortex.sku());
  const auto w = sgemm_workload(25536, 6);
  const auto impacts =
      measure_tenancy_impact(vortex, 0, w, opts, TenancyOptions{});
  for (const auto& imp : impacts) {
    EXPECT_LT(imp.shared_temp - imp.exclusive_temp, Celsius{3.5});
    EXPECT_LT(imp.slowdown, 1.02);
  }
}

}  // namespace
}  // namespace gpuvar
