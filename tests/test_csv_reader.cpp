#include "common/csv_reader.hpp"

#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gpuvar {
namespace {

TEST(ParseCsvLine, SplitsPlainFields) {
  const auto f = parse_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(ParseCsvLine, HandlesEmptyFields) {
  const auto f = parse_csv_line("a,,c,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(ParseCsvLine, QuotedCommasAndQuotes) {
  const auto f = parse_csv_line("\"a,b\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "say \"hi\"");
}

TEST(ParseCsvLine, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"abc"), std::invalid_argument);
}

TEST(CsvReader, ReadsHeaderAndRows) {
  std::istringstream in("x,y\n1,foo\n2,bar\n");
  CsvReader csv(in);
  EXPECT_EQ(csv.columns(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(csv.rows(), 2u);
  EXPECT_EQ(csv.field(0, "y"), "foo");
  EXPECT_DOUBLE_EQ(csv.number(1, "x"), 2.0);
  EXPECT_EQ(csv.integer(1, "x"), 2);
}

TEST(CsvReader, ToleratesCrlfAndTrailingBlankLines) {
  std::istringstream in("a,b\r\n1,2\r\n\n");
  CsvReader csv(in);
  EXPECT_EQ(csv.rows(), 1u);
  EXPECT_EQ(csv.field(0, "b"), "2");
}

TEST(CsvReader, QuotedFieldSpanningLines) {
  std::istringstream in("a,b\n\"multi\nline\",2\n");
  CsvReader csv(in);
  EXPECT_EQ(csv.rows(), 1u);
  EXPECT_EQ(csv.field(0, "a"), "multi\nline");
}

TEST(CsvReader, RejectsWidthMismatch) {
  std::istringstream in("a,b\n1,2,3\n");
  EXPECT_THROW(CsvReader reader(in), std::invalid_argument);
}

TEST(CsvReader, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(CsvReader reader(in), std::invalid_argument);
}

TEST(CsvReader, UnknownColumnAndBadNumbersThrow) {
  std::istringstream in("a\nnope\n");
  CsvReader csv(in);
  EXPECT_THROW(csv.field(0, "b"), std::invalid_argument);
  EXPECT_THROW(csv.number(0, "a"), std::invalid_argument);
  EXPECT_THROW(csv.integer(0, "a"), std::invalid_argument);
  EXPECT_THROW(csv.field(1, "a"), std::invalid_argument);
  EXPECT_TRUE(csv.has_column("a"));
  EXPECT_FALSE(csv.has_column("b"));
}

TEST(CsvReader, RoundTripsWriterOutput) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"name", "value"});
  writer.add("weird,\"name\"").add(3.25);
  writer.end_row();
  writer.flush();
  std::istringstream in(out.str());
  CsvReader csv(in);
  EXPECT_EQ(csv.field(0, "name"), "weird,\"name\"");
  EXPECT_DOUBLE_EQ(csv.number(0, "value"), 3.25);
}

}  // namespace
}  // namespace gpuvar
