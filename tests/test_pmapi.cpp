#include "gpu/pmapi.hpp"

#include <gtest/gtest.h>

#include "gpu/device.hpp"
#include "common/units.hpp"
#include "gpu/kernel.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"
#include "thermal/thermal.hpp"

namespace gpuvar {
namespace {

class PmApiTest : public ::testing::Test {
 protected:
  SimulatedGpu make_device() {
    SimOptions opts;
    opts.tick = sku_.dvfs_control_period;
    return SimulatedGpu(sku_, chip_, ThermalParams{0.10, 40.0, Celsius{28.0}}, opts);
  }
  GpuSku sku_ = make_v100_sxm2();
  SiliconSample chip_;
};

TEST_F(PmApiTest, FreshDeviceReportsNoThrottle) {
  auto dev = make_device();
  const auto snap = dev.pm_snapshot();
  EXPECT_EQ(snap.reason, ThrottleReason::kNone);
  EXPECT_DOUBLE_EQ(snap.sm_freq.value(), sku_.max_mhz.value());
  EXPECT_DOUBLE_EQ(snap.max_freq.value(), sku_.max_mhz.value());
  EXPECT_DOUBLE_EQ(snap.power_limit.value(), sku_.tdp.value());
  EXPECT_DOUBLE_EQ(snap.slowdown_temp.value(), sku_.slowdown_temp.value());
  EXPECT_NEAR(snap.clock_residency(), 1.0, 1e-12);
}

TEST_F(PmApiTest, GemmReportsPowerCapThrottle) {
  auto dev = make_device();
  dev.run_kernel(make_sgemm_kernel(25536), nullptr);
  const auto snap = dev.pm_snapshot();
  EXPECT_EQ(snap.reason, ThrottleReason::kPowerCap);
  EXPECT_LT(snap.clock_residency(), 1.0);
  EXPECT_GT(snap.power, Watts{250.0});
  EXPECT_GE(snap.power_headroom(), Watts{-5.0});
}

TEST_F(PmApiTest, AccountingSplitsResidency) {
  auto dev = make_device();
  const auto k = make_sgemm_kernel(25536);
  dev.run_kernel(k, nullptr);
  dev.run_kernel(k, nullptr);
  const auto acct = dev.pm_accounting();
  EXPECT_GT(acct.total, Seconds{4.0});
  // Starts at boost, then spends most of the time power-limited.
  EXPECT_GT(acct.power_limited, acct.at_max_clock);
  EXPECT_DOUBLE_EQ(acct.thermal_limited.value(), 0.0);
  EXPECT_NEAR((acct.at_max_clock + acct.power_limited + acct.thermal_limited)
                  .value(),
              acct.total.value(), 1e-9);
  EXPECT_GT(acct.down_steps, 10);
  EXPECT_NEAR(acct.power_limited_residency() + acct.max_clock_residency(),
              1.0, 1e-9);
}

TEST_F(PmApiTest, MemoryBoundKernelStaysAtMaxClock) {
  auto dev = make_device();
  KernelSpec k;
  k.name = "stream";
  k.bytes = 3e10;
  k.flops = 1e9;
  k.activity = 0.5;
  dev.run_kernel(k, nullptr);
  const auto acct = dev.pm_accounting();
  EXPECT_NEAR(acct.max_clock_residency(), 1.0, 1e-9);
  EXPECT_EQ(dev.pm_snapshot().reason, ThrottleReason::kNone);
}

TEST_F(PmApiTest, ThermalThrottleReported) {
  // Terrible cooling: the chip hits the slowdown temperature.
  SimOptions opts;
  opts.tick = sku_.dvfs_control_period;
  SimulatedGpu dev(sku_, chip_, ThermalParams{0.30, 6.0, Celsius{45.0}}, opts);
  dev.run_kernel(make_sgemm_kernel(25536), nullptr);
  const auto acct = dev.pm_accounting();
  EXPECT_GT(acct.thermal_limited, Seconds{});
}

TEST_F(PmApiTest, ResetClearsAccounting) {
  auto dev = make_device();
  dev.run_kernel(make_sgemm_kernel(25536), nullptr);
  dev.reset();
  const auto acct = dev.pm_accounting();
  EXPECT_DOUBLE_EQ(acct.total.value(), 0.0);
  EXPECT_EQ(acct.down_steps, 0);
}

TEST_F(PmApiTest, WorksThroughTheInterface) {
  auto dev = make_device();
  PmIntrospection& api = dev;  // the vendor-neutral handle
  dev.run_kernel(make_sgemm_kernel(25536), nullptr);
  EXPECT_GT(api.pm_accounting().total, Seconds{});
  EXPECT_NE(api.pm_snapshot().reason, ThrottleReason::kThermal);
}

TEST_F(PmApiTest, PreheatRaisesStartingTemperature) {
  auto cold = make_device();
  auto hot = make_device();
  hot.preheat(Watts{290.0});
  EXPECT_GT(hot.temperature(), cold.temperature() + Celsius{15.0});
  EXPECT_THROW(hot.preheat(Watts{-1.0}), std::invalid_argument);
}

TEST_F(PmApiTest, ReasonNames) {
  EXPECT_EQ(to_string(ThrottleReason::kNone), "none");
  EXPECT_EQ(to_string(ThrottleReason::kPowerCap), "power-cap");
  EXPECT_EQ(to_string(ThrottleReason::kThermal), "thermal");
}

}  // namespace
}  // namespace gpuvar
