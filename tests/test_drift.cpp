#include "core/drift.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gpuvar.hpp"

namespace gpuvar {
namespace {

std::vector<RunRecord> fleet_history(int gpus, int runs, double noise_ms,
                                     std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<RunRecord> records;
  for (int g = 0; g < gpus; ++g) {
    const double base = 2500.0 + rng.normal(0.0, 30.0);  // silicon spread
    for (int run = 0; run < runs; ++run) {
      RunRecord r;
      r.gpu_index = g;
      r.loc.name = "gpu" + std::to_string(g);
      r.run_index = run;
      r.perf_ms = base + rng.normal(0.0, noise_ms);
      r.freq_mhz = 1400.0;
      r.power_w = 298.0;
      r.temp_c = 60.0;
      records.push_back(std::move(r));
    }
  }
  return records;
}

void add_drift(std::vector<RunRecord>& records, std::size_t gpu,
               double ms_per_run) {
  for (auto& r : records) {
    if (r.gpu_index == gpu) r.perf_ms += ms_per_run * r.run_index;
  }
}

/// Test-local frame construction (the bulk row adapters are gone).
RecordFrame frame_from(const std::vector<RunRecord>& rows) {
  RecordFrame f;
  f.reserve(rows.size());
  for (const auto& r : rows) f.append_row(r);
  return f;
}

TEST(Drift, NoiseEstimateRecoversSigma) {
  const auto records = fleet_history(50, 20, 5.0);
  EXPECT_NEAR(estimate_run_noise_ms(frame_from(records)), 5.0, 1.2);
}

TEST(Drift, StableFleetRaisesNoFlags) {
  // The paper's core temporal finding: variability is persistent, not
  // drifting — so a healthy history must be silent.
  const auto records = fleet_history(80, 12, 5.0);
  EXPECT_TRUE(detect_performance_drift(frame_from(records)).empty());
}

TEST(Drift, DetectsADegradingGpu) {
  auto records = fleet_history(80, 12, 5.0);
  add_drift(records, 17, 8.0);  // ~+88 ms over the history (~3.5%)
  const auto flags = detect_performance_drift(frame_from(records));
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].gpu_index, 17u);
  EXPECT_GT(flags[0].drift_pct, 1.0);
  EXPECT_GT(flags[0].noise_sigmas, 4.0);
}

TEST(Drift, DetectsImprovementAsNegativeDrift) {
  auto records = fleet_history(40, 12, 5.0);
  add_drift(records, 3, -8.0);  // e.g. a heatsink was reseated
  const auto flags = detect_performance_drift(frame_from(records));
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_LT(flags[0].drift_pct, 0.0);
}

TEST(Drift, SortsBySeverity) {
  auto records = fleet_history(40, 12, 5.0);
  add_drift(records, 5, 6.0);
  add_drift(records, 9, 15.0);
  const auto flags = detect_performance_drift(frame_from(records));
  ASSERT_GE(flags.size(), 2u);
  EXPECT_EQ(flags[0].gpu_index, 9u);
}

TEST(Drift, SlowButStableGpuIsNotFlagged) {
  // A consistently slow GPU (the paper's outliers) is variability, not
  // drift.
  auto records = fleet_history(40, 12, 5.0);
  for (auto& r : records) {
    if (r.gpu_index == 7) r.perf_ms += 200.0;  // constant offset
  }
  for (const auto& f : detect_performance_drift(frame_from(records))) {
    EXPECT_NE(f.gpu_index, 7u);
  }
}

TEST(Drift, ShortHistoriesSkipped) {
  auto records = fleet_history(10, 4, 5.0);
  add_drift(records, 2, 50.0);
  EXPECT_TRUE(detect_performance_drift(frame_from(records)).empty());
}

TEST(Drift, ThresholdControlsSensitivity) {
  auto records = fleet_history(40, 12, 5.0);
  add_drift(records, 4, 3.5);  // borderline drift
  DriftOptions loose;
  loose.threshold_sigmas = 2.0;
  loose.min_drift_fraction = 0.003;
  DriftOptions strict;
  strict.threshold_sigmas = 12.0;
  EXPECT_FALSE(detect_performance_drift(frame_from(records), loose).empty());
  EXPECT_TRUE(detect_performance_drift(frame_from(records), strict).empty());
}

TEST(Drift, RejectsBadOptions) {
  const auto records = fleet_history(5, 8, 2.0);
  DriftOptions bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(detect_performance_drift(frame_from(records), bad),
               std::invalid_argument);
  bad = DriftOptions{};
  bad.min_runs = bad.baseline_runs;
  EXPECT_THROW(detect_performance_drift(frame_from(records), bad),
               std::invalid_argument);
}

TEST(Drift, RealCampaignIsStable) {
  // End-to-end: a simulated multi-run Vortex campaign must not drift.
  Cluster vortex(vortex_spec());
  auto cfg = default_config(vortex, sgemm_workload(25536, 5), 8);
  cfg.node_coverage = 0.3;
  const auto result = run_experiment(vortex, cfg);
  EXPECT_TRUE(detect_performance_drift(result.frame).empty());
}

}  // namespace
}  // namespace gpuvar
