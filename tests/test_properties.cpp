// Parameterized property suites: invariants that must hold across whole
// parameter sweeps (SKUs, power limits, silicon draws, kernel shapes).
#include <gtest/gtest.h>

#include <cmath>

#include "gpuvar.hpp"

namespace gpuvar {
namespace {

GpuSku sku_by_name(const std::string& name) {
  if (name == "v100") return make_v100_sxm2();
  if (name == "rtx5000") return make_rtx5000();
  return make_mi60();
}

// ---------------------------------------------------------------------
// Property: DVFS never lets steady-state power exceed the limit by more
// than one control step's worth, for any SKU, chip, and power limit.
// ---------------------------------------------------------------------
class PowerCapProperty
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(PowerCapProperty, SteadyPowerRespectsLimit) {
  const auto sku = sku_by_name(std::get<0>(GetParam()));
  const double limit = std::get<1>(GetParam());
  for (int chip_id = 0; chip_id < 4; ++chip_id) {
    SiliconSample chip =
        sample_silicon(sku, 11, "prop/chip:" + std::to_string(chip_id));
    SimOptions opts;
    opts.tick = sku.dvfs_control_period;
    SimulatedGpu dev(sku, chip, ThermalParams{0.1, 80.0, Celsius{28.0}}, opts);
    dev.set_power_limit(Watts{limit});
    const std::size_t n = sku.vendor == Vendor::kAmd ? 24576 : 25536;
    const auto k = make_sgemm_kernel(n);
    dev.run_kernel(k, nullptr);  // transient
    Sampler sampler;
    dev.run_kernel(k, &sampler, 1.0);
    const auto s = sampler.summary();
    // Median steady-state power within the limit (+0.5 W tolerance for
    // the quantile grid); short over-cap excursions are bounded by one
    // control step.
    EXPECT_LE(s.power.median, limit + 0.5) << sku.name;
    const double step_power =
        0.05 * limit + 30.0;  // generous single-step bound
    EXPECT_LE(s.power.max, limit + step_power) << sku.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SkusAndLimits, PowerCapProperty,
    ::testing::Combine(::testing::Values("v100", "rtx5000", "mi60"),
                       ::testing::Values(150.0, 200.0, 250.0, 300.0)));

// ---------------------------------------------------------------------
// Property: lowering the power limit never makes a compute-bound kernel
// faster (monotonicity of the cap).
// ---------------------------------------------------------------------
class CapMonotonicityProperty
    : public ::testing::TestWithParam<std::string> {};

TEST_P(CapMonotonicityProperty, RuntimeMonotoneInPowerLimit) {
  const auto sku = sku_by_name(GetParam());
  SiliconSample chip;
  SimOptions opts;
  opts.tick = sku.dvfs_control_period;
  const std::size_t n = sku.vendor == Vendor::kAmd ? 24576 : 25536;
  const auto k = make_sgemm_kernel(n);
  double prev = 0.0;
  for (double limit : {300.0, 250.0, 200.0, 150.0, 100.0}) {
    SimulatedGpu dev(sku, chip, ThermalParams{0.08, 80.0, Celsius{25.0}}, opts);
    dev.set_power_limit(Watts{limit});
    dev.run_kernel(k, nullptr);
    const auto r = dev.run_kernel(k, nullptr);
    if (prev > 0.0) {
      EXPECT_GE(r.duration, Seconds{prev * 0.999})
          << sku.name << " at " << limit << " W";
    }
    prev = r.duration.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Skus, CapMonotonicityProperty,
                         ::testing::Values("v100", "rtx5000", "mi60"));

// ---------------------------------------------------------------------
// Property: temperature never exceeds the shutdown threshold (the
// slowdown throttle must kick in first), across cooling severities.
// ---------------------------------------------------------------------
class ThermalSafetyProperty : public ::testing::TestWithParam<double> {};

TEST_P(ThermalSafetyProperty, NeverReachesShutdown) {
  const auto sku = make_mi60();  // hottest SKU in the study
  SiliconSample chip;
  chip.leakage_factor = 1.4;  // leaky chip, worst case
  SimOptions opts;
  opts.tick = sku.dvfs_control_period;
  const ThermalParams hot{GetParam(), 60.0, Celsius{42.0}};
  SimulatedGpu dev(sku, chip, hot, opts);
  const auto k = make_sgemm_kernel(24576);
  for (int rep = 0; rep < 3; ++rep) {
    Sampler sampler;
    dev.run_kernel(k, &sampler, 1.0);
    EXPECT_LT(sampler.summary().temp.max, sku.shutdown_temp.value());
  }
}

INSTANTIATE_TEST_SUITE_P(CoolingSeverity, ThermalSafetyProperty,
                         ::testing::Values(0.15, 0.20, 0.25, 0.30));

// ---------------------------------------------------------------------
// Property: a worse silicon bin never settles at a higher frequency than
// a better bin under the same cap (ordering preservation).
// ---------------------------------------------------------------------
class BinOrderingProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(BinOrderingProperty, WorseBinNeverFaster) {
  const auto sku = sku_by_name(GetParam());
  SimOptions opts;
  opts.tick = sku.dvfs_control_period;
  const std::size_t n = sku.vendor == Vendor::kAmd ? 24576 : 25536;
  const auto k = make_sgemm_kernel(n);
  double prev_duration = 0.0;
  for (double sigmas : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    SiliconSample chip;
    chip.vf_offset = sigmas * sku.spread.vf_offset_sigma;
    SimulatedGpu dev(sku, chip, ThermalParams{0.08, 80.0, Celsius{25.0}}, opts);
    dev.run_kernel(k, nullptr);
    const auto r = dev.run_kernel(k, nullptr);
    if (prev_duration > 0.0) {
      EXPECT_GE(r.duration, Seconds{prev_duration * 0.999}) << sku.name;
    }
    prev_duration = r.duration.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Skus, BinOrderingProperty,
                         ::testing::Values("v100", "rtx5000", "mi60"));

// ---------------------------------------------------------------------
// Property: fast-forward equals full simulation across workload shapes.
// ---------------------------------------------------------------------
class FastForwardProperty : public ::testing::TestWithParam<int> {};

TEST_P(FastForwardProperty, MatchesFullTickSimulation) {
  const auto sku = make_v100_sxm2();
  SiliconSample chip =
      sample_silicon(sku, 5, "ff/chip:" + std::to_string(GetParam()));
  KernelSpec k;
  switch (GetParam() % 3) {
    case 0:
      k = make_sgemm_kernel(25536);
      break;
    case 1:  // memory-bound streaming
      k.name = "stream";
      k.bytes = 3e10;
      k.flops = 1e9;
      k.activity = 0.5;
      break;
    default:  // balanced
      k.name = "balanced";
      k.flops = 8e12;
      k.bytes = 8e9;
      k.activity = 0.8;
      break;
  }
  SimOptions full;
  full.tick = sku.dvfs_control_period;
  full.fast_forward = false;
  SimOptions ff = full;
  ff.fast_forward = true;
  SimulatedGpu dev_full(sku, chip, ThermalParams{0.1, 80.0, Celsius{30.0}}, full);
  SimulatedGpu dev_ff(sku, chip, ThermalParams{0.1, 80.0, Celsius{30.0}}, ff);
  const auto rf = dev_full.run_kernel(k, nullptr);
  const auto rq = dev_ff.run_kernel(k, nullptr);
  EXPECT_NEAR(rq.duration.value(), rf.duration.value(), 0.01 * rf.duration.value());
  EXPECT_NEAR(rq.energy.value(), rf.energy.value(), 0.02 * rf.energy.value());
}

INSTANTIATE_TEST_SUITE_P(Chips, FastForwardProperty, ::testing::Range(0, 9));

// ---------------------------------------------------------------------
// Property: experiment records are invariant to the node-parallelism
// (determinism under scheduling).
// ---------------------------------------------------------------------
TEST(DeterminismProperty, RecordsIndependentOfThreadCount) {
  Cluster cluster(cloudlab_spec());
  auto cfg = default_config(cluster, sgemm_workload(16384, 3), 2);
  const auto a = run_experiment(cluster, cfg);
  // Force a serial pass through a fresh pool of size 1.
  ThreadPool serial(1);
  std::vector<RunRecord> serial_records;
  for (int node = 0; node < cluster.node_count(); ++node) {
    for (int run = 0; run < 2; ++run) {
      for (const auto& res :
           run_on_node(cluster, node, cfg.workload, run, cfg.run_options)) {
        serial_records.push_back(to_record(cluster, res));
      }
    }
  }
  ASSERT_EQ(a.frame.size(), serial_records.size());
  // Compare per-GPU aggregates (ordering may differ).
  RecordFrame serial_frame;
  serial_frame.reserve(serial_records.size());
  for (const auto& r : serial_records) serial_frame.append_row(r);
  const auto agg_a = per_gpu_medians(a.frame);
  const auto agg_b = per_gpu_medians(serial_frame);
  ASSERT_EQ(agg_a.size(), agg_b.size());
  for (std::size_t i = 0; i < agg_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(agg_a[i].perf_ms, agg_b[i].perf_ms);
    EXPECT_DOUBLE_EQ(agg_a[i].power_w, agg_b[i].power_w);
  }
}

// ---------------------------------------------------------------------
// Property: across a population, compute-bound runtime variation shrinks
// as process spread shrinks (the silicon-spread ablation invariant).
// ---------------------------------------------------------------------
class SpreadScalingProperty : public ::testing::TestWithParam<double> {};

TEST_P(SpreadScalingProperty, VariationTracksProcessSigma) {
  const double scale = GetParam();
  auto spec = vortex_spec();
  spec.name = "vortex-scaled";  // fresh seed paths per scale
  spec.sku.spread.vf_offset_sigma *= scale;
  spec.sku.spread.efficiency_sigma *= scale;
  spec.sku.spread.leakage_log_sigma *= scale;
  Cluster cluster(spec);
  auto cfg = default_config(cluster, sgemm_workload(25536, 6), 1);
  cfg.node_coverage = 0.6;
  const auto rep =
      analyze_variability(run_experiment(cluster, cfg).frame);
  if (scale <= 0.25) {
    EXPECT_LT(rep.perf.variation_pct, 6.0);
  } else if (scale >= 1.0) {
    EXPECT_GT(rep.perf.variation_pct, 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, SpreadScalingProperty,
                         ::testing::Values(0.0, 0.25, 1.0, 1.5));

// ---------------------------------------------------------------------
// Property: box-summary invariants over arbitrary record sets.
// ---------------------------------------------------------------------
class BoxInvariantProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoxInvariantProperty, OrderAndContainment) {
  Rng rng(100 + GetParam());
  std::vector<double> xs;
  const int n = 3 + static_cast<int>(rng.uniform_index(500));
  for (int i = 0; i < n; ++i) {
    xs.push_back(rng.lognormal(3.0, rng.uniform(0.1, 1.0)));
  }
  const auto b = stats::box_summary(xs);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.lo_whisker, b.q1);
  EXPECT_GE(b.hi_whisker, b.q3);
  EXPECT_GE(b.min, b.lo_whisker - 1e9);  // min may be below the whisker
  EXPECT_LE(b.q1, b.max);
  // Every point is either inside the whiskers or listed as an outlier.
  std::size_t outside = 0;
  for (double x : xs) {
    if (b.is_outlier_value(x)) ++outside;
  }
  EXPECT_EQ(outside, b.outlier_count());
}

INSTANTIATE_TEST_SUITE_P(RandomSamples, BoxInvariantProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace gpuvar
