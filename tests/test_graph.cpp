#include "hostbench/graph.hpp"
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gpuvar::host {
namespace {

TEST(Graph, CsrFromEdgesBuildsPullLayout) {
  // Edges u->v stored under row v (incoming).
  const auto g = csr_from_edges(4, {{0, 1}, {0, 2}, {3, 1}});
  EXPECT_EQ(g.n, 4u);
  EXPECT_EQ(g.nnz(), 3u);
  // Row 1 has incoming from 0 and 3.
  EXPECT_EQ(g.row_ptr[1], 0u);
  EXPECT_EQ(g.row_ptr[2], 2u);
  EXPECT_EQ(g.col_idx[0], 0u);
  EXPECT_EQ(g.col_idx[1], 3u);
  EXPECT_EQ(g.out_degree[0], 2u);
  EXPECT_EQ(g.out_degree[3], 1u);
  EXPECT_EQ(g.out_degree[1], 0u);
}

TEST(Graph, DeduplicatesEdges) {
  const auto g = csr_from_edges(3, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.nnz(), 1u);
}

TEST(Graph, RejectsOutOfRangeVertices) {
  EXPECT_THROW(csr_from_edges(2, {{0, 5}}), std::invalid_argument);
}

TEST(Graph, RandomGraphHasExpectedDensity) {
  Rng rng(1);
  const auto g = random_graph(10000, 8.0, rng);
  g.validate();
  const double avg =
      static_cast<double>(g.nnz()) / static_cast<double>(g.n);
  EXPECT_NEAR(avg, 8.0, 0.5);  // dedup removes a few
}

TEST(Graph, RandomGraphHasNoSelfLoops) {
  Rng rng(2);
  const auto g = random_graph(500, 4.0, rng);
  for (std::size_t v = 0; v < g.n; ++v) {
    for (std::uint32_t e = g.row_ptr[v]; e < g.row_ptr[v + 1]; ++e) {
      EXPECT_NE(g.col_idx[e], v);
    }
  }
}

TEST(Graph, CircuitGraphHasBandStructure) {
  Rng rng(3);
  const std::size_t band = 3;
  const auto g = circuit_graph(1000, band, 1.0, rng);
  g.validate();
  // Every interior vertex must have its banded neighbours.
  for (std::size_t v = band; v + band < g.n; v += 97) {
    std::set<std::uint32_t> in;
    for (std::uint32_t e = g.row_ptr[v]; e < g.row_ptr[v + 1]; ++e) {
      in.insert(g.col_idx[e]);
    }
    for (std::size_t d = 1; d <= band; ++d) {
      EXPECT_TRUE(in.count(static_cast<std::uint32_t>(v - d)));
      EXPECT_TRUE(in.count(static_cast<std::uint32_t>(v + d)));
    }
  }
}

TEST(Graph, CircuitGraphScalesLikeRajat30) {
  // rajat30: 644k vertices, ~6.2M nnz => ~9.6 edges/vertex. Our default
  // analogue (band 4 + fill 1.5) lands in the same density regime.
  Rng rng(4);
  const auto g = circuit_graph(20000, 4, 1.5, rng);
  const double avg =
      static_cast<double>(g.nnz()) / static_cast<double>(g.n);
  EXPECT_GT(avg, 7.0);
  EXPECT_LT(avg, 11.0);
}

TEST(Graph, ValidateCatchesCorruption) {
  auto g = csr_from_edges(3, {{0, 1}, {1, 2}});
  g.row_ptr[1] = 99;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar::host
