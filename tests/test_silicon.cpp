#include "gpu/silicon.hpp"
#include "common/units.hpp"
#include "gpu/sku.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gpuvar {
namespace {

TEST(Silicon, DeterministicPerPath) {
  const auto sku = make_v100_sxm2();
  const auto a = sample_silicon(sku, 42, "cluster/gpu:0");
  const auto b = sample_silicon(sku, 42, "cluster/gpu:0");
  EXPECT_DOUBLE_EQ(a.vf_offset.value(), b.vf_offset.value());
  EXPECT_DOUBLE_EQ(a.efficiency_factor, b.efficiency_factor);
  EXPECT_DOUBLE_EQ(a.leakage_factor, b.leakage_factor);
  EXPECT_DOUBLE_EQ(a.mem_bw_factor, b.mem_bw_factor);
}

TEST(Silicon, DifferentGpusDiffer) {
  const auto sku = make_v100_sxm2();
  const auto a = sample_silicon(sku, 42, "cluster/gpu:0");
  const auto b = sample_silicon(sku, 42, "cluster/gpu:1");
  EXPECT_NE(a.vf_offset, b.vf_offset);
}

TEST(Silicon, SamplesWithinBinningLimits) {
  const auto sku = make_v100_sxm2();
  for (int i = 0; i < 2000; ++i) {
    const auto chip = sample_silicon(sku, 7, "gpu:" + std::to_string(i));
    EXPECT_LE(abs(chip.vf_offset), 3.0 * sku.spread.vf_offset_sigma);
    EXPECT_GE(chip.efficiency_factor,
              1.0 - 3.0 * sku.spread.efficiency_sigma);
    EXPECT_LE(chip.efficiency_factor,
              1.0 + 3.0 * sku.spread.efficiency_sigma);
    EXPECT_GT(chip.leakage_factor, 0.0);
    EXPECT_GT(chip.mem_bw_factor, 0.9);
  }
}

TEST(Silicon, PopulationMomentsMatchSpread) {
  const auto sku = make_v100_sxm2();
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto chip = sample_silicon(sku, 3, "g:" + std::to_string(i));
    sum += chip.vf_offset.value();
    sq += chip.vf_offset.value() * chip.vf_offset.value();
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.001);
  // Truncation at 3 sigma shrinks the sd slightly (~1.3%).
  EXPECT_NEAR(sd, sku.spread.vf_offset_sigma.value(), 0.1 * sku.spread.vf_offset_sigma.value());
}

TEST(Silicon, QualityScoreOrdersChips) {
  const auto sku = make_v100_sxm2();
  SiliconSample good;
  good.vf_offset = -2.0 * sku.spread.vf_offset_sigma;
  good.efficiency_factor = 1.0 - 2.0 * sku.spread.efficiency_sigma;
  SiliconSample bad;
  bad.vf_offset = 2.0 * sku.spread.vf_offset_sigma;
  bad.efficiency_factor = 1.0 + 2.0 * sku.spread.efficiency_sigma;
  EXPECT_GT(good.quality_score(sku), bad.quality_score(sku));
  EXPECT_NEAR(SiliconSample{}.quality_score(sku), 0.5, 1e-9);
}

TEST(Silicon, QualityScoreBounded) {
  const auto sku = make_v100_sxm2();
  SiliconSample extreme;
  extreme.vf_offset = Volts{1.0};  // absurd
  extreme.leakage_factor = 100.0;
  const double q = extreme.quality_score(sku);
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1.0);
}

}  // namespace
}  // namespace gpuvar
