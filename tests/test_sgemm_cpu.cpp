#include "hostbench/sgemm_cpu.hpp"
#include "common/rng.hpp"
#include "hostbench/matrix.hpp"

#include <gtest/gtest.h>

namespace gpuvar::host {
namespace {

class SgemmCpuTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SgemmCpuTest, MatchesNaiveReference) {
  const std::size_t n = GetParam();
  Rng rng(n);
  const auto a = random_matrix(n, n, rng);
  const auto b = random_matrix(n, n, rng);
  Matrix c_fast(n, n, 0.0f), c_ref(n, n, 0.0f);
  sgemm(1.0f, a, b, 0.0f, c_fast);
  sgemm_naive(1.0f, a, b, 0.0f, c_ref);
  // fp32 accumulation order differs; tolerance scales with k.
  EXPECT_LT(max_abs_diff(c_fast, c_ref), 1e-4f * static_cast<float>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SgemmCpuTest,
                         ::testing::Values(1, 7, 33, 64, 100, 129, 256));

TEST(SgemmCpu, RectangularShapes) {
  Rng rng(9);
  const auto a = random_matrix(37, 53, rng);
  const auto b = random_matrix(53, 71, rng);
  Matrix c_fast(37, 71, 0.0f), c_ref(37, 71, 0.0f);
  sgemm(1.0f, a, b, 0.0f, c_fast);
  sgemm_naive(1.0f, a, b, 0.0f, c_ref);
  EXPECT_LT(max_abs_diff(c_fast, c_ref), 1e-3f);
}

TEST(SgemmCpu, AlphaBetaSemantics) {
  Rng rng(2);
  const auto a = random_matrix(16, 16, rng);
  const auto b = random_matrix(16, 16, rng);
  Matrix c(16, 16, 1.0f), c_ref(16, 16, 1.0f);
  sgemm(2.0f, a, b, 0.5f, c);
  sgemm_naive(2.0f, a, b, 0.5f, c_ref);
  EXPECT_LT(max_abs_diff(c, c_ref), 1e-3f);
}

TEST(SgemmCpu, ParallelMatchesSerial) {
  Rng rng(3);
  const auto a = random_matrix(200, 150, rng);
  const auto b = random_matrix(150, 180, rng);
  Matrix c_par(200, 180, 0.0f), c_ser(200, 180, 0.0f);
  SgemmOptions par, ser;
  ser.parallel = false;
  sgemm(1.0f, a, b, 0.0f, c_par, par);
  sgemm(1.0f, a, b, 0.0f, c_ser, ser);
  // Identical blocking -> identical summation order -> bitwise equal.
  EXPECT_FLOAT_EQ(max_abs_diff(c_par, c_ser), 0.0f);
}

TEST(SgemmCpu, TinyBlockSizesStillCorrect) {
  Rng rng(4);
  const auto a = random_matrix(50, 50, rng);
  const auto b = random_matrix(50, 50, rng);
  Matrix c(50, 50, 0.0f), c_ref(50, 50, 0.0f);
  SgemmOptions opts;
  opts.block_m = 3;
  opts.block_n = 5;
  opts.block_k = 7;
  sgemm(1.0f, a, b, 0.0f, c, opts);
  sgemm_naive(1.0f, a, b, 0.0f, c_ref);
  EXPECT_LT(max_abs_diff(c, c_ref), 1e-3f);
}

TEST(SgemmCpu, ShapeMismatchThrows) {
  Matrix a(4, 5), b(6, 4), c(4, 4);
  EXPECT_THROW(sgemm(1.0f, a, b, 0.0f, c), std::invalid_argument);
}

TEST(SgemmCpu, FlopsFormula) {
  EXPECT_DOUBLE_EQ(sgemm_flops(10, 20, 30), 12000.0);
}

}  // namespace
}  // namespace gpuvar::host
