#include "stats/boxplot.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace gpuvar::stats {
namespace {

TEST(BoxSummary, PaperConventions) {
  // Q1=2, Q2=3, Q3=4 -> IQR=2, whiskers at -1 and 7, range 8,
  // variation = 8/3.
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto b = box_summary(xs);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.iqr, 2.0);
  EXPECT_DOUBLE_EQ(b.lo_whisker, -1.0);
  EXPECT_DOUBLE_EQ(b.hi_whisker, 7.0);
  EXPECT_DOUBLE_EQ(b.range, 8.0);
  EXPECT_NEAR(b.variation(), 8.0 / 3.0, 1e-12);
  EXPECT_TRUE(b.outlier_indices.empty());
}

TEST(BoxSummary, DetectsOutliers) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 100.0};
  const auto b = box_summary(xs);
  ASSERT_EQ(b.outlier_count(), 1u);
  EXPECT_EQ(b.outlier_indices[0], 5u);
  EXPECT_TRUE(b.is_outlier_value(100.0));
  EXPECT_FALSE(b.is_outlier_value(5.0));
}

TEST(BoxSummary, OutliersExcludedByWithoutOutliers) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 100.0, -50.0};
  const auto b = box_summary(xs);
  const auto clean = without_outliers(xs, b);
  EXPECT_EQ(clean.size(), 5u);
  for (double v : clean) {
    EXPECT_GE(v, b.lo_whisker);
    EXPECT_LE(v, b.hi_whisker);
  }
}

TEST(BoxSummary, ConstantSampleDegenerates) {
  const std::vector<double> xs(10, 7.0);
  const auto b = box_summary(xs);
  EXPECT_DOUBLE_EQ(b.iqr, 0.0);
  EXPECT_DOUBLE_EQ(b.range, 0.0);
  EXPECT_DOUBLE_EQ(b.variation(), 0.0);
  EXPECT_TRUE(b.outlier_indices.empty());
}

TEST(BoxSummary, SingleValue) {
  const std::vector<double> xs{5.0};
  const auto b = box_summary(xs);
  EXPECT_EQ(b.count, 1u);
  EXPECT_DOUBLE_EQ(b.median, 5.0);
}

TEST(BoxSummary, VariationUndefinedForZeroMedian) {
  const std::vector<double> xs{-1.0, 0.0, 1.0};
  const auto b = box_summary(xs);
  EXPECT_THROW(b.variation(), std::invalid_argument);
}

TEST(BoxSummary, MinMaxTracked) {
  const std::vector<double> xs{10.0, -3.0, 6.0};
  const auto b = box_summary(xs);
  EXPECT_DOUBLE_EQ(b.min, -3.0);
  EXPECT_DOUBLE_EQ(b.max, 10.0);
}

TEST(BoxSummary, GaussianOutlierFractionIsSmall) {
  // The 1.5 IQR fence captures ~99.3% of a Gaussian (§III).
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.normal());
  const auto b = box_summary(xs);
  const double frac =
      static_cast<double>(b.outlier_count()) / static_cast<double>(xs.size());
  EXPECT_NEAR(frac, 0.007, 0.004);
}

TEST(BoxSummary, VariationOfGaussianNearTheory) {
  // range = 4·1.349σ... whisker range is Q3-Q1 + 3·IQR = 4·IQR = 5.4σ.
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.normal(100.0, 1.0));
  const auto b = box_summary(xs);
  EXPECT_NEAR(b.variation(), 4.0 * 1.349 / 100.0, 0.004);
}

TEST(BoxSummary, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(box_summary(xs), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar::stats
