#include "stats/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gpuvar::stats {
namespace {

TEST(BoxChart, RendersOneRowPerSeries) {
  std::vector<NamedSeries> series{
      {"alpha", {1.0, 2.0, 3.0, 4.0, 5.0}},
      {"beta", {2.0, 3.0, 4.0}},
  };
  const auto s = render_box_chart(series);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find('M'), std::string::npos);   // median marker
  EXPECT_NE(s.find("var="), std::string::npos);
}

TEST(BoxChart, MarksOutliers) {
  std::vector<NamedSeries> series{
      {"x", {1.0, 2.0, 3.0, 4.0, 5.0, 50.0}},
  };
  const auto s = render_box_chart(series);
  EXPECT_NE(s.find('o'), std::string::npos);
}

TEST(BoxChart, RejectsEmptySeriesList) {
  std::vector<NamedSeries> series;
  EXPECT_THROW(render_box_chart(series), std::invalid_argument);
}

TEST(BoxChart, RejectsEmptySeries) {
  std::vector<NamedSeries> series{{"x", {}}};
  EXPECT_THROW(render_box_chart(series), std::invalid_argument);
}

TEST(BoxChart, ConstantSeriesRenders) {
  std::vector<NamedSeries> series{{"flat", {5.0, 5.0, 5.0}}};
  const auto s = render_box_chart(series);
  EXPECT_NE(s.find("flat"), std::string::npos);
}

TEST(Scatter, IncludesRhoInTitle) {
  std::vector<double> xs{1, 2, 3, 4, 5}, ys{2, 4, 6, 8, 10};
  ScatterOptions opts;
  opts.x_label = "x";
  opts.y_label = "y";
  const auto s = render_scatter(xs, ys, opts);
  EXPECT_NE(s.find("rho = +1.00"), std::string::npos);
  EXPECT_NE(s.find("strong"), std::string::npos);
}

TEST(Scatter, DensityGlyphs) {
  std::vector<double> xs(100, 1.0), ys(100, 1.0);
  xs.push_back(2.0);
  ys.push_back(2.0);
  const auto s = render_scatter(xs, ys);
  EXPECT_NE(s.find('#'), std::string::npos);  // dense cell
  EXPECT_NE(s.find('.'), std::string::npos);  // single point
}

TEST(Scatter, RejectsMismatch) {
  std::vector<double> xs{1, 2}, ys{1};
  EXPECT_THROW(render_scatter(xs, ys), std::invalid_argument);
}

TEST(LineChart, RendersSeries) {
  std::vector<double> ts, ys;
  for (int i = 0; i < 100; ++i) {
    ts.push_back(i * 0.1);
    ys.push_back(1300.0 + i);
  }
  LineChartOptions opts;
  opts.y_label = "MHz";
  const auto s = render_line_chart(ts, ys, opts);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("MHz"), std::string::npos);
}

TEST(LineChart, ConstantSeriesRenders) {
  std::vector<double> ts{0.0, 1.0, 2.0}, ys{5.0, 5.0, 5.0};
  EXPECT_FALSE(render_line_chart(ts, ys).empty());
}

}  // namespace
}  // namespace gpuvar::stats
