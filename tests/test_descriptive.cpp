#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gpuvar::stats {
namespace {

TEST(Descriptive, SingleValue) {
  const std::vector<double> xs{3.0};
  const auto d = describe(xs);
  EXPECT_EQ(d.count, 1u);
  EXPECT_DOUBLE_EQ(d.mean, 3.0);
  EXPECT_DOUBLE_EQ(d.variance, 0.0);
  EXPECT_DOUBLE_EQ(d.min, 3.0);
  EXPECT_DOUBLE_EQ(d.max, 3.0);
}

TEST(Descriptive, KnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto d = describe(xs);
  EXPECT_DOUBLE_EQ(d.mean, 5.0);
  EXPECT_NEAR(d.variance, 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(d.min, 2.0);
  EXPECT_DOUBLE_EQ(d.max, 9.0);
  EXPECT_DOUBLE_EQ(d.sum, 40.0);
}

TEST(Descriptive, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(describe(xs), std::invalid_argument);
}

TEST(Descriptive, NegativeValues) {
  const std::vector<double> xs{-1.0, -2.0, -3.0};
  const auto d = describe(xs);
  EXPECT_DOUBLE_EQ(d.mean, -2.0);
  EXPECT_DOUBLE_EQ(d.min, -3.0);
  EXPECT_DOUBLE_EQ(d.max, -1.0);
  EXPECT_NEAR(d.cv(), d.stddev / 2.0, 1e-12);
}

TEST(Descriptive, CvZeroMean) {
  const std::vector<double> xs{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(describe(xs).cv(), 0.0);
}

TEST(Descriptive, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: huge offset, tiny variance.
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(1e9 + (i % 2));
  const auto d = describe(xs);
  EXPECT_NEAR(d.variance, 0.25, 0.01);
}

TEST(Descriptive, HelpersAgreeWithDescribe) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(sample_variance(xs)), 1e-15);
}

}  // namespace
}  // namespace gpuvar::stats
