#include "core/classify.hpp"
#include "telemetry/counters.hpp"

#include <gtest/gtest.h>

namespace gpuvar {
namespace {

ProfilerCounters counters(double fu, double dram, double mem_stall,
                          double exec_stall = 0.1) {
  ProfilerCounters c;
  c.fu_util = fu;
  c.dram_util = dram;
  c.mem_stall_frac = mem_stall;
  c.exec_stall_frac = exec_stall;
  return c;
}

TEST(Classify, SgemmProfileIsComputeBound) {
  EXPECT_EQ(classify_application(counters(10.0, 2.0, 0.03, 0.36)),
            AppClass::kComputeBound);
}

TEST(Classify, LammpsProfileIsBandwidthBound) {
  EXPECT_EQ(classify_application(counters(1.4, 9.2, 0.07)),
            AppClass::kMemoryBandwidthBound);
}

TEST(Classify, PagerankProfileIsLatencyBound) {
  EXPECT_EQ(classify_application(counters(0.6, 2.2, 0.61)),
            AppClass::kMemoryLatencyBound);
}

TEST(Classify, ResnetProfileIsBalanced) {
  EXPECT_EQ(classify_application(counters(5.4, 0.3, 0.1)),
            AppClass::kBalanced);
}

TEST(Classify, LatencyDominatesOtherSignals) {
  // Huge stalls win even with high FU util (precedence order).
  EXPECT_EQ(classify_application(counters(9.0, 1.0, 0.7)),
            AppClass::kMemoryLatencyBound);
}

TEST(Classify, PlacementAdviceComputeBound) {
  const auto advice = advise_placement(counters(10.0, 2.0, 0.03));
  EXPECT_EQ(advice.app_class, AppClass::kComputeBound);
  EXPECT_FALSE(advice.tolerates_variable_nodes);
  EXPECT_NEAR(advice.frequency_sensitivity_pct, 1.0, 1e-9);
  EXPECT_FALSE(advice.note.empty());
}

TEST(Classify, PlacementAdviceMemoryBoundToleratesVariation) {
  // Takeaway 8: memory-bound workloads can use worse-performing nodes.
  for (const auto& c :
       {counters(1.4, 9.2, 0.07), counters(0.6, 2.2, 0.61)}) {
    const auto advice = advise_placement(c);
    EXPECT_TRUE(advice.tolerates_variable_nodes);
    EXPECT_LT(advice.frequency_sensitivity_pct, 0.3);
  }
}

TEST(Classify, Names) {
  EXPECT_EQ(to_string(AppClass::kComputeBound), "compute-bound");
  EXPECT_EQ(to_string(AppClass::kMemoryLatencyBound),
            "memory-latency-bound");
}

}  // namespace
}  // namespace gpuvar
