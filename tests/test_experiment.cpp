#include "core/experiment.hpp"
#include "cluster/cluster.hpp"
#include "common/thread_pool.hpp"
#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gpuvar {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  Cluster cluster_{cloudlab_spec()};
};

TEST_F(ExperimentTest, CoversAllGpusWithConfiguredRuns) {
  auto cfg = default_config(cluster_, sgemm_workload(16384, 3), 2);
  const auto result = run_experiment(cluster_, cfg);
  EXPECT_EQ(result.gpus_measured, cluster_.size());
  EXPECT_EQ(result.nodes_measured, 3u);
  EXPECT_EQ(result.frame.size(), cluster_.size() * 2);
}

TEST_F(ExperimentTest, RecordsCarryLocationAndMetrics) {
  auto cfg = default_config(cluster_, sgemm_workload(16384, 2), 1);
  const auto result = run_experiment(cluster_, cfg);
  for (std::size_t i = 0; i < result.frame.size(); ++i) {
    EXPECT_FALSE(result.frame.loc(i).name.empty());
    EXPECT_GT(result.frame.perf_ms()[i], 0.0);
    EXPECT_GT(result.frame.freq_mhz()[i], 0.0);
    EXPECT_GT(result.frame.power_w()[i], 0.0);
    EXPECT_GT(result.frame.temp_c()[i], 0.0);
  }
}

TEST_F(ExperimentTest, DeterministicAcrossInvocations) {
  auto cfg = default_config(cluster_, sgemm_workload(16384, 2), 2);
  const auto a = run_experiment(cluster_, cfg);
  const auto b = run_experiment(cluster_, cfg);
  ASSERT_EQ(a.frame.size(), b.frame.size());
  // Records arrive grouped by node; same config -> identical values.
  for (std::size_t i = 0; i < a.frame.size(); ++i) {
    EXPECT_EQ(a.frame.gpu_index(i), b.frame.gpu_index(i));
    EXPECT_DOUBLE_EQ(a.frame.perf_ms()[i], b.frame.perf_ms()[i]);
  }
}

TEST_F(ExperimentTest, NodeCoverageSubsamples) {
  Cluster longhorn(longhorn_spec());
  auto cfg = default_config(longhorn, pagerank_workload(3), 1);
  cfg.node_coverage = 0.25;
  const auto result = run_experiment(longhorn, cfg);
  EXPECT_EQ(result.nodes_measured, 26u);
  EXPECT_EQ(result.frame.size(), 26u * 4u);
}

TEST_F(ExperimentTest, DayTagStampsRecordsAndChangesNoise) {
  auto cfg = default_config(cluster_, sgemm_workload(16384, 2), 1);
  cfg.day_of_week = 2;
  const auto wed = run_experiment(cluster_, cfg);
  for (std::int16_t d : wed.frame.days_of_week()) EXPECT_EQ(d, 2);

  cfg.day_of_week = 3;
  const auto thu = run_experiment(cluster_, cfg);
  // Same hardware population, different transient draws.
  EXPECT_NE(wed.frame.perf_ms()[0], thu.frame.perf_ms()[0]);
  EXPECT_NEAR(wed.frame.perf_ms()[0] / thu.frame.perf_ms()[0], 1.0, 0.05);
}

TEST_F(ExperimentTest, MultiGpuWorkloadOneJobPerNode) {
  auto cfg = default_config(cluster_, resnet50_multi_workload(5), 1);
  const auto result = run_experiment(cluster_, cfg);
  // 3 nodes x 4 GPUs, one record per GPU.
  EXPECT_EQ(result.frame.size(), 12u);
  std::set<std::size_t> gpus;
  for (std::size_t i = 0; i < result.frame.size(); ++i) {
    gpus.insert(result.frame.gpu_index(i));
  }
  EXPECT_EQ(gpus.size(), 12u);
}

TEST_F(ExperimentTest, ProgressReportsEveryNodeJob) {
  // A real worker pool, not the inline fallback: the callback path
  // must complete (not deadlock) while workers take the progress lock
  // mid-dispatch — the regression the lockorder pass's
  // lock-held-across-wait finding guards against.
  ThreadPool pool(4);
  auto cfg = default_config(cluster_, sgemm_workload(16384, 2), 2);
  cfg.pool = &pool;
  std::vector<std::pair<std::size_t, std::size_t>> seen;
  cfg.progress = [&](std::size_t done, std::size_t total) {
    seen.emplace_back(done, total);  // serialized under the progress lock
  };
  const auto result = run_experiment(cluster_, cfg);
  ASSERT_EQ(seen.size(), result.nodes_measured);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    // Counts are monotone 1..N whatever order the jobs finish in.
    EXPECT_EQ(seen[i].first, i + 1);
    EXPECT_EQ(seen[i].second, result.nodes_measured);
  }
}

TEST_F(ExperimentTest, RejectsBadConfig) {
  auto cfg = default_config(cluster_, sgemm_workload(16384, 1), 0);
  EXPECT_THROW(run_experiment(cluster_, cfg), std::invalid_argument);
}

TEST_F(ExperimentTest, ZeroCoverageIsAnEmptyResultNotAnError) {
  // Degenerate edge of a coverage sweep: measure nothing, report
  // nothing — and never invoke the progress callback with total 0.
  auto cfg = default_config(cluster_, sgemm_workload(16384, 2), 1);
  cfg.node_coverage = 0.0;
  bool progress_called = false;
  cfg.progress = [&](std::size_t, std::size_t) { progress_called = true; };
  const auto result = run_experiment(cluster_, cfg);
  EXPECT_EQ(result.frame.size(), 0u);
  EXPECT_EQ(result.gpus_measured, 0u);
  EXPECT_EQ(result.nodes_measured, 0u);
  EXPECT_FALSE(progress_called);
}

TEST_F(ExperimentTest, EmptyClusterIsAnEmptyResultNotAnError) {
  ClusterSpec spec = cloudlab_spec();
  spec.layout.nodes = 0;
  const Cluster empty(spec);
  auto cfg = default_config(empty, sgemm_workload(16384, 2), 1);
  bool progress_called = false;
  cfg.progress = [&](std::size_t, std::size_t) { progress_called = true; };
  const auto result = run_experiment(empty, cfg);
  EXPECT_EQ(result.frame.size(), 0u);
  EXPECT_EQ(result.nodes_measured, 0u);
  EXPECT_FALSE(progress_called);
}

}  // namespace
}  // namespace gpuvar
