#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gpuvar {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  Cluster cluster_{cloudlab_spec()};
};

TEST_F(ExperimentTest, CoversAllGpusWithConfiguredRuns) {
  auto cfg = default_config(cluster_, sgemm_workload(16384, 3), 2);
  const auto result = run_experiment(cluster_, cfg);
  EXPECT_EQ(result.gpus_measured, cluster_.size());
  EXPECT_EQ(result.nodes_measured, 3u);
  EXPECT_EQ(result.records.size(), cluster_.size() * 2);
}

TEST_F(ExperimentTest, RecordsCarryLocationAndMetrics) {
  auto cfg = default_config(cluster_, sgemm_workload(16384, 2), 1);
  const auto result = run_experiment(cluster_, cfg);
  for (const auto& r : result.records) {
    EXPECT_FALSE(r.loc.name.empty());
    EXPECT_GT(r.perf_ms, 0.0);
    EXPECT_GT(r.freq_mhz, 0.0);
    EXPECT_GT(r.power_w, 0.0);
    EXPECT_GT(r.temp_c, 0.0);
  }
}

TEST_F(ExperimentTest, DeterministicAcrossInvocations) {
  auto cfg = default_config(cluster_, sgemm_workload(16384, 2), 2);
  const auto a = run_experiment(cluster_, cfg);
  const auto b = run_experiment(cluster_, cfg);
  ASSERT_EQ(a.records.size(), b.records.size());
  // Records arrive grouped by node; same config -> identical values.
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].gpu_index, b.records[i].gpu_index);
    EXPECT_DOUBLE_EQ(a.records[i].perf_ms, b.records[i].perf_ms);
  }
}

TEST_F(ExperimentTest, NodeCoverageSubsamples) {
  Cluster longhorn(longhorn_spec());
  auto cfg = default_config(longhorn, pagerank_workload(3), 1);
  cfg.node_coverage = 0.25;
  const auto result = run_experiment(longhorn, cfg);
  EXPECT_EQ(result.nodes_measured, 26u);
  EXPECT_EQ(result.records.size(), 26u * 4u);
}

TEST_F(ExperimentTest, DayTagStampsRecordsAndChangesNoise) {
  auto cfg = default_config(cluster_, sgemm_workload(16384, 2), 1);
  cfg.day_of_week = 2;
  const auto wed = run_experiment(cluster_, cfg);
  for (const auto& r : wed.records) EXPECT_EQ(r.day_of_week, 2);

  cfg.day_of_week = 3;
  const auto thu = run_experiment(cluster_, cfg);
  // Same hardware population, different transient draws.
  EXPECT_NE(wed.records[0].perf_ms, thu.records[0].perf_ms);
  EXPECT_NEAR(wed.records[0].perf_ms / thu.records[0].perf_ms, 1.0, 0.05);
}

TEST_F(ExperimentTest, MultiGpuWorkloadOneJobPerNode) {
  auto cfg = default_config(cluster_, resnet50_multi_workload(5), 1);
  const auto result = run_experiment(cluster_, cfg);
  // 3 nodes x 4 GPUs, one record per GPU.
  EXPECT_EQ(result.records.size(), 12u);
  std::set<std::size_t> gpus;
  for (const auto& r : result.records) gpus.insert(r.gpu_index);
  EXPECT_EQ(gpus.size(), 12u);
}

TEST_F(ExperimentTest, RejectsBadConfig) {
  auto cfg = default_config(cluster_, sgemm_workload(16384, 1), 0);
  EXPECT_THROW(run_experiment(cluster_, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
