#include "gpu/sampler.hpp"
#include "common/units.hpp"

#include <gtest/gtest.h>

namespace gpuvar {
namespace {

TEST(StreamingQuantile, ExactMinMaxMean) {
  StreamingQuantile q(0.0, 100.0, 0.1);
  q.add(10.0, 1.0);
  q.add(20.0, 1.0);
  q.add(90.0, 2.0);
  EXPECT_DOUBLE_EQ(q.min(), 10.0);
  EXPECT_DOUBLE_EQ(q.max(), 90.0);
  EXPECT_DOUBLE_EQ(q.mean(), (10.0 + 20.0 + 180.0) / 4.0);
  EXPECT_DOUBLE_EQ(q.total_weight(), 4.0);
}

TEST(StreamingQuantile, WeightedMedian) {
  StreamingQuantile q(0.0, 100.0, 0.1);
  q.add(10.0, 1.0);
  q.add(50.0, 10.0);  // dominates
  q.add(90.0, 1.0);
  EXPECT_NEAR(q.median(), 50.0, 0.1);
}

TEST(StreamingQuantile, MedianAtResolution) {
  StreamingQuantile q(0.0, 10.0, 0.5);
  for (int i = 0; i < 100; ++i) q.add(3.0, 1.0);
  EXPECT_NEAR(q.median(), 3.0, 0.5);
}

TEST(StreamingQuantile, QuantilesMonotone) {
  StreamingQuantile q(0.0, 100.0, 0.1);
  for (int i = 1; i <= 100; ++i) q.add(i, 1.0);
  EXPECT_LE(q.quantile(0.25), q.quantile(0.5));
  EXPECT_LE(q.quantile(0.5), q.quantile(0.75));
  EXPECT_NEAR(q.quantile(0.25), 25.0, 1.1);
}

TEST(StreamingQuantile, EmptyThrows) {
  StreamingQuantile q(0.0, 1.0, 0.1);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.median(), std::invalid_argument);
  EXPECT_THROW(q.mean(), std::invalid_argument);
}

TEST(StreamingQuantile, ZeroWeightIgnored) {
  StreamingQuantile q(0.0, 1.0, 0.1);
  q.add(0.5, 0.0);
  EXPECT_TRUE(q.empty());
}

TEST(Sampler, SummaryAggregatesSpans) {
  Sampler s;
  s.record_span(Seconds{0.0}, Seconds{1.0}, MegaHertz{1400.0}, Watts{290.0}, Celsius{60.0});
  s.record_span(Seconds{1.0}, Seconds{1.0}, MegaHertz{1300.0}, Watts{300.0}, Celsius{70.0});
  const auto sum = s.summary();
  EXPECT_DOUBLE_EQ(sum.duration.value(), 2.0);
  EXPECT_DOUBLE_EQ(sum.energy.value(), 590.0);
  EXPECT_DOUBLE_EQ(sum.freq.min, 1300.0);
  EXPECT_DOUBLE_EQ(sum.freq.max, 1400.0);
  EXPECT_NEAR(sum.power.mean, 295.0, 1e-9);
  EXPECT_NEAR(sum.temp.mean, 65.0, 1e-9);
}

TEST(Sampler, MedianIsTimeWeighted) {
  Sampler s;
  s.record_span(Seconds{0.0}, Seconds{9.0}, MegaHertz{1500.0}, Watts{100.0}, Celsius{50.0});
  s.record_span(Seconds{9.0}, Seconds{1.0}, MegaHertz{1000.0}, Watts{300.0}, Celsius{90.0});
  const auto sum = s.summary();
  EXPECT_NEAR(sum.freq.median, 1500.0, 1.0);
  EXPECT_NEAR(sum.power.median, 100.0, 0.5);
}

TEST(Sampler, NoSeriesByDefault) {
  Sampler s;
  s.record_span(Seconds{0.0}, Seconds{1.0}, MegaHertz{1400.0}, Watts{290.0}, Celsius{60.0});
  EXPECT_TRUE(s.series().empty());
}

TEST(Sampler, SeriesDecimatedAtInterval) {
  SamplerOptions opts;
  opts.keep_series = true;
  opts.series_interval = Seconds{0.1};
  Sampler s(opts);
  s.record_span(Seconds{0.0}, Seconds{1.0}, MegaHertz{1400.0}, Watts{290.0}, Celsius{60.0});
  // 10 samples at 0.0, 0.1, ..., 0.9.
  EXPECT_EQ(s.series().size(), 10u);
  EXPECT_DOUBLE_EQ(s.series()[0].t.value(), 0.0);
  EXPECT_DOUBLE_EQ(s.series()[1].freq.value(), 1400.0);
}

TEST(Sampler, SeriesIntervalClampedToProfilerFloor) {
  SamplerOptions opts;
  opts.keep_series = true;
  opts.series_interval = Seconds{1e-6};  // below the 1 ms nvprof floor
  Sampler s(opts);
  EXPECT_DOUBLE_EQ(s.options().series_interval.value(), kMinSamplingInterval.value());
}

TEST(Sampler, SeriesRespectsCap) {
  SamplerOptions opts;
  opts.keep_series = true;
  opts.series_interval = Seconds{0.001};
  opts.max_series_samples = 100;
  Sampler s(opts);
  s.record_span(Seconds{0.0}, Seconds{10.0}, MegaHertz{1.0}, Watts{1.0}, Celsius{1.0});
  EXPECT_EQ(s.series().size(), 100u);
}

TEST(Sampler, ResetClearsEverything) {
  SamplerOptions opts;
  opts.keep_series = true;
  Sampler s(opts);
  s.record_span(Seconds{0.0}, Seconds{1.0}, MegaHertz{1400.0}, Watts{290.0}, Celsius{60.0});
  s.reset();
  EXPECT_TRUE(s.series().empty());
  EXPECT_DOUBLE_EQ(s.summary().duration.value(), 0.0);
}

TEST(Sampler, ZeroDurationSpanIgnored) {
  Sampler s;
  s.record_span(Seconds{0.0}, Seconds{0.0}, MegaHertz{1.0}, Watts{1.0}, Celsius{1.0});
  EXPECT_DOUBLE_EQ(s.summary().duration.value(), 0.0);
}

}  // namespace
}  // namespace gpuvar
