#include "stats/correlation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace gpuvar::stats {
namespace {

TEST(Pearson, PerfectPositive) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson(ys, xs), 0.0);
}

TEST(Pearson, IndependentSeriesNearZero) {
  Rng rng(1);
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.normal());
    ys.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(Pearson, InvariantToAffineTransform) {
  Rng rng(2);
  std::vector<double> xs, ys;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    xs.push_back(x);
    ys.push_back(x + 0.5 * rng.normal());
  }
  const double base = pearson(xs, ys);
  std::vector<double> xs2;
  for (double x : xs) xs2.push_back(3.0 * x - 17.0);
  EXPECT_NEAR(pearson(xs2, ys), base, 1e-10);
}

TEST(Pearson, RejectsMismatchedSizes) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0};
  EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(Pearson, RejectsTooFewPoints) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(pearson(xs, xs), std::invalid_argument);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(i * i * i);  // monotone but nonlinear
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> xs{1.0, 2.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 2.0, 2.0, 3.0};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Spearman, RobustToOneOutlier) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(i);
  }
  ys.back() = 1e9;  // massive outlier barely moves the rank correlation
  EXPECT_GT(spearman(xs, ys), 0.99);
}

TEST(CorrelationStrength, Labels) {
  EXPECT_EQ(correlation_strength(-0.97), "strong");
  EXPECT_EQ(correlation_strength(0.76), "moderate");
  EXPECT_EQ(correlation_strength(0.46), "weak");
  EXPECT_EQ(correlation_strength(-0.09), "uncorrelated");
}

}  // namespace
}  // namespace gpuvar::stats
