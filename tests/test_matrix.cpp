#include "hostbench/matrix.hpp"
#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace gpuvar::host {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_FLOAT_EQ(m.at(2, 3), 1.5f);
  m.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 7.0f);
}

TEST(Matrix, RowMajorLayout) {
  Matrix m(2, 3);
  m.at(1, 0) = 9.0f;
  EXPECT_FLOAT_EQ(m.data()[3], 9.0f);
}

TEST(Matrix, RejectsEmptyShapes) {
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
  EXPECT_THROW(Matrix(3, 0), std::invalid_argument);
}

TEST(Matrix, RandomMatrixInRange) {
  Rng rng(1);
  const auto m = random_matrix(10, 10, rng);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GE(m.data()[i], -1.0f);
    EXPECT_LT(m.data()[i], 1.0f);
  }
}

TEST(Matrix, SameShape) {
  Matrix a(2, 3), b(2, 3), c(3, 2);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
  b.at(1, 1) = 3.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 2.5f);
  EXPECT_THROW(max_abs_diff(a, Matrix(3, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar::host
