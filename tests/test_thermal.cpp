#include "thermal/thermal.hpp"
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gpuvar {
namespace {

TEST(Thermal, StartsAtCoolant) {
  ThermalModel m(ThermalParams{0.1, 100.0, Celsius{25.0}});
  EXPECT_DOUBLE_EQ(m.temperature().value(), 25.0);
}

TEST(Thermal, EquilibriumIsCoolantPlusPR) {
  ThermalModel m(ThermalParams{0.12, 100.0, Celsius{30.0}});
  EXPECT_DOUBLE_EQ(m.equilibrium(Watts{250.0}).value(), 30.0 + 250.0 * 0.12);
}

TEST(Thermal, ApproachesEquilibriumMonotonically) {
  ThermalModel m(ThermalParams{0.1, 100.0, Celsius{25.0}});
  const double teq = m.equilibrium(Watts{300.0}).value();
  double prev = m.temperature().value();
  for (int i = 0; i < 200; ++i) {
    m.step(Seconds{0.5}, Watts{300.0});
    EXPECT_GE(m.temperature(), Celsius{prev});
    EXPECT_LE(m.temperature(), Celsius{teq + 1e-9});
    prev = m.temperature().value();
  }
  EXPECT_NEAR(m.temperature().value(), teq, 0.01);
}

TEST(Thermal, CoolsBackDown) {
  ThermalModel m(ThermalParams{0.1, 100.0, Celsius{25.0}});
  m.settle(Watts{300.0});
  m.step(Seconds{100.0}, Watts{0.0});
  EXPECT_NEAR(m.temperature().value(), 25.0, 0.01);
}

TEST(Thermal, ExactExponentialStep) {
  // One step of dt must match the closed-form solution exactly.
  ThermalParams p{0.1, 100.0, Celsius{25.0}};
  ThermalModel m(p);
  const double dt = 3.0, power = 200.0;
  m.step(Seconds{dt}, Watts{power});
  const double teq = 25.0 + 200.0 * 0.1;
  const double expected = teq + (25.0 - teq) * std::exp(-dt / (0.1 * 100.0));
  EXPECT_NEAR(m.temperature().value(), expected, 1e-9);
}

TEST(Thermal, StepCompositionEqualsOneBigStep) {
  // Exactness means many small steps == one large step for constant P.
  ThermalParams p{0.15, 80.0, Celsius{28.0}};
  ThermalModel a(p), b(p);
  for (int i = 0; i < 1000; ++i) a.step(Seconds{0.01}, Watts{250.0});
  b.step(Seconds{10.0}, Watts{250.0});
  EXPECT_NEAR(a.temperature().value(), b.temperature().value(), 1e-9);
}

TEST(Thermal, TimeConstantIsRC) {
  ThermalModel m(ThermalParams{0.2, 50.0, Celsius{25.0}});
  EXPECT_DOUBLE_EQ(m.time_constant().value(), 10.0);
}

TEST(Thermal, SettleJumpsToEquilibrium) {
  ThermalModel m(ThermalParams{0.1, 100.0, Celsius{25.0}});
  m.settle(Watts{300.0});
  EXPECT_DOUBLE_EQ(m.temperature().value(), m.equilibrium(Watts{300.0}).value());
}

TEST(Thermal, BetterCoolingLowerEquilibrium) {
  ThermalModel air(ThermalParams{0.135, 80.0, Celsius{28.0}});
  ThermalModel water(ThermalParams{0.080, 80.0, Celsius{24.0}});
  EXPECT_GT(air.equilibrium(Watts{295.0}), water.equilibrium(Watts{295.0}));
}

TEST(Thermal, RejectsBadParams) {
  EXPECT_THROW(ThermalModel(ThermalParams{0.0, 100.0, Celsius{25.0}}),
               std::invalid_argument);
  EXPECT_THROW(ThermalModel(ThermalParams{0.1, 0.0, Celsius{25.0}}),
               std::invalid_argument);
}

TEST(Thermal, RejectsNegativeDt) {
  ThermalModel m(ThermalParams{0.1, 100.0, Celsius{25.0}});
  EXPECT_THROW(m.step(Seconds{-1.0}, Watts{100.0}), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
