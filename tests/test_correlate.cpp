#include "core/correlate.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {
namespace {

RecordFrame linear_records() {
  // perf inversely proportional to frequency; power constant; temp noisy.
  RecordFrame rs;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    RunRecord r;
    r.gpu_index = i;
    r.freq_mhz = 1300.0 + i;
    r.perf_ms = 1e6 / r.freq_mhz;
    r.power_w = 298.0;
    r.temp_c = rng.uniform(40.0, 80.0);
    rs.append_row(r);
  }
  return rs;
}

TEST(Correlate, PerfFreqStronglyNegative) {
  const auto rs = linear_records();
  const auto c = correlate_pair(rs, Metric::kFreq, Metric::kPerf);
  EXPECT_LT(c.rho, -0.99);
  EXPECT_EQ(c.strength, "strong");
  EXPECT_LT(c.spearman, -0.99);
}

TEST(Correlate, ConstantPowerUncorrelated) {
  const auto rs = linear_records();
  const auto c = correlate_pair(rs, Metric::kPower, Metric::kPerf);
  EXPECT_DOUBLE_EQ(c.rho, 0.0);
  EXPECT_EQ(c.strength, "uncorrelated");
}

TEST(Correlate, ReportCoversPaperPairs) {
  const auto rs = linear_records();
  const auto report = correlate_metrics(rs);
  EXPECT_EQ(report.perf_freq.x, Metric::kFreq);
  EXPECT_EQ(report.perf_freq.y, Metric::kPerf);
  EXPECT_EQ(report.power_temp.x, Metric::kTemp);
  EXPECT_EQ(report.power_temp.y, Metric::kPower);
  EXPECT_EQ(report.all().size(), 4u);
  EXPECT_LT(report.perf_freq.rho, -0.99);
  EXPECT_NEAR(report.perf_temp.rho, 0.0, 0.25);
}

TEST(Correlate, TooFewRecordsThrow) {
  RecordFrame rs;
  rs.append_row(RunRecord{});
  EXPECT_THROW(correlate_pair(rs, Metric::kFreq, Metric::kPerf),
               std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
