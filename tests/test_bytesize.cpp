// parse_byte_size: the shared grammar behind every byte-budget flag
// (--shard-budget, --cache-budget). The overflow tests moved here from
// test_cli.cpp when the parser was hoisted into src/common.
#include "common/bytesize.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gpuvar {
namespace {

TEST(ByteSize, ParsesPlainBytesAndBinarySuffixes) {
  EXPECT_EQ(parse_byte_size("0", "--x"), 0u);
  EXPECT_EQ(parse_byte_size("123", "--x"), 123u);
  EXPECT_EQ(parse_byte_size("4K", "--x"), 4096u);
  EXPECT_EQ(parse_byte_size("4k", "--x"), 4096u);
  EXPECT_EQ(parse_byte_size("2M", "--x"), 2ull << 20);
  EXPECT_EQ(parse_byte_size("3G", "--x"), 3ull << 30);
}

TEST(ByteSize, UnlimitedSentinel) {
  EXPECT_EQ(parse_byte_size("unlimited", "--x"), kUnlimitedBytes);
  // The sentinel compares above any real budget, so `bytes <= budget`
  // needs no special case.
  EXPECT_GT(kUnlimitedBytes, 1ull << 62);
}

TEST(ByteSize, RejectsBadSyntaxNamingTheFlag) {
  for (const char* bad : {"", "4X", "-1", "1.5G", "G", "unlimitedd"}) {
    try {
      parse_byte_size(bad, "--cache-budget");
      FAIL() << "accepted '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("bad --cache-budget"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ByteSize, OverflowFailsLoudly) {
  // A value that wraps uint64 when scaled must be an error, never a
  // silently tiny (or accidentally unlimited) budget.
  for (const char* bad : {"99999999999G", "18014398509481984K"}) {
    try {
      parse_byte_size(bad, "--shard-budget");
      FAIL() << "accepted '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("overflows"), std::string::npos)
          << e.what();
    }
  }
  // The largest representable products still parse.
  EXPECT_EQ(parse_byte_size("9223372036854775807", "--x"),
            9223372036854775807ull);
  EXPECT_EQ(parse_byte_size("17179869183G", "--x"),
            17179869183ull << 30);
}

}  // namespace
}  // namespace gpuvar
