#include "core/variability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "telemetry/frame.hpp"
#include "cluster/faults.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {
namespace {

RunRecord rec(std::size_t gpu, double perf, double freq = 1400.0,
              double power = 295.0, double temp = 60.0, int cabinet = 0,
              int run = 0, int day = -1) {
  RunRecord r;
  r.gpu_index = gpu;
  r.loc.cabinet = cabinet;
  r.loc.row = cabinet;
  r.loc.node = static_cast<int>(gpu / 4);
  r.loc.name = "gpu" + std::to_string(gpu);
  r.run_index = run;
  r.day_of_week = day;
  r.perf_ms = perf;
  r.freq_mhz = freq;
  r.power_w = power;
  r.temp_c = temp;
  return r;
}

/// Test-local frame construction (the bulk row adapters are gone).
RecordFrame frame_from(const std::vector<RunRecord>& rows) {
  RecordFrame f;
  f.reserve(rows.size());
  for (const auto& r : rows) f.append_row(r);
  return f;
}

TEST(Variability, AnalyzeComputesVariationPct) {
  std::vector<RunRecord> rs;
  for (int i = 0; i < 5; ++i) rs.push_back(rec(i, 2400.0 + i * 50.0));
  const auto report = analyze_variability(frame_from(rs));
  EXPECT_EQ(report.records, 5u);
  EXPECT_EQ(report.gpus, 5u);
  EXPECT_DOUBLE_EQ(report.perf.box.median, 2500.0);
  EXPECT_NEAR(report.perf.variation_pct,
              report.perf.box.variation() * 100.0, 1e-9);
}

TEST(Variability, GroupKeysAndLabels) {
  auto r = rec(0, 1.0);
  r.loc.cabinet = 5;
  r.loc.row = 7;
  r.loc.column = 35;
  r.loc.node = 17;
  r.day_of_week = 0;
  EXPECT_EQ(group_key(r, GroupBy::kCabinet), 5);
  EXPECT_EQ(group_key(r, GroupBy::kRow), 7);
  EXPECT_EQ(group_key(r, GroupBy::kColumn), 35);
  EXPECT_EQ(group_key(r, GroupBy::kNode), 17);
  EXPECT_EQ(group_key(r, GroupBy::kDayOfWeek), 0);
  EXPECT_EQ(group_label(GroupBy::kCabinet, 5), "c005");
  EXPECT_EQ(group_label(GroupBy::kRow, 7), "row H");
  EXPECT_EQ(group_label(GroupBy::kColumn, 35), "col 36");
  EXPECT_EQ(group_label(GroupBy::kDayOfWeek, 0), "Mon");
}

TEST(Variability, SeriesByGroupSplitsValues) {
  std::vector<RunRecord> rs;
  rs.push_back(rec(0, 100.0, 1, 1, 1, /*cabinet=*/0));
  rs.push_back(rec(1, 200.0, 1, 1, 1, /*cabinet=*/0));
  rs.push_back(rec(2, 300.0, 1, 1, 1, /*cabinet=*/1));
  const auto series = series_by_group(frame_from(rs), Metric::kPerf, GroupBy::kCabinet);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].values.size(), 2u);
  EXPECT_EQ(series[1].values.size(), 1u);
}

TEST(Variability, ByGroupReportsPerGroup) {
  std::vector<RunRecord> rs;
  for (int i = 0; i < 8; ++i) {
    rs.push_back(rec(i, 1000.0 + 100.0 * (i % 4), 1400, 295, 60, i / 4));
  }
  const auto groups = variability_by_group(frame_from(rs), GroupBy::kCabinet);
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at(0).records, 4u);
}

TEST(Variability, RepeatabilityMatchesDefinition) {
  std::vector<RunRecord> rs;
  // GPU 0: runs 100, 102, 104 -> (104-100)/102 = 3.92%.
  rs.push_back(rec(0, 100.0, 1, 1, 1, 0, 0));
  rs.push_back(rec(0, 102.0, 1, 1, 1, 0, 1));
  rs.push_back(rec(0, 104.0, 1, 1, 1, 0, 2));
  // GPU 1: single run -> skipped.
  rs.push_back(rec(1, 500.0));
  const auto reps = per_gpu_repeatability(frame_from(rs));
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].gpu_index, 0u);
  EXPECT_EQ(reps[0].runs, 3);
  EXPECT_NEAR(reps[0].variation_pct, 4.0 / 102.0 * 100.0, 1e-9);
}

TEST(Variability, SlowAssignmentProbabilityMatchesCombinatorics) {
  std::vector<RunRecord> rs;
  // 10 GPUs: 8 at 100 ms, 2 at 110 ms (10% slower than median).
  for (int i = 0; i < 8; ++i) rs.push_back(rec(i, 100.0));
  for (int i = 8; i < 10; ++i) rs.push_back(rec(i, 110.0));
  const double p1 = slow_assignment_probability(frame_from(rs), 1, 0.06);
  EXPECT_NEAR(p1, 0.2, 1e-9);
  const double p4 = slow_assignment_probability(frame_from(rs), 4, 0.06);
  EXPECT_NEAR(p4, 1.0 - std::pow(0.8, 4), 1e-9);
  EXPECT_GT(p4, p1);  // §VII: multi-GPU users hit stragglers more often
}

TEST(Variability, SlowAssignmentUsesPerGpuMedians) {
  std::vector<RunRecord> rs;
  // One GPU with a single slow run should not count as a slow GPU if its
  // median is fine.
  rs.push_back(rec(0, 100.0, 1, 1, 1, 0, 0));
  rs.push_back(rec(0, 100.0, 1, 1, 1, 0, 1));
  rs.push_back(rec(0, 150.0, 1, 1, 1, 0, 2));
  rs.push_back(rec(1, 100.0));
  rs.push_back(rec(2, 100.0));
  EXPECT_DOUBLE_EQ(slow_assignment_probability(frame_from(rs), 1, 0.06), 0.0);
}

TEST(Variability, EmptyRecordsThrow) {
  std::vector<RunRecord> rs;
  EXPECT_THROW(analyze_variability(frame_from(rs)), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
