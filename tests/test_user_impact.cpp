#include "core/user_impact.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gpuvar.hpp"

namespace gpuvar {
namespace {

RunRecord rec(std::size_t gpu, double perf) {
  RunRecord r;
  r.gpu_index = gpu;
  r.loc.name = "gpu" + std::to_string(gpu);
  r.perf_ms = perf;
  r.freq_mhz = 1400.0;
  r.power_w = 298.0;
  r.temp_c = 60.0;
  return r;
}

/// Test-local frame construction (the bulk row adapters are gone).
RecordFrame frame_from(const std::vector<RunRecord>& rows) {
  RecordFrame f;
  f.reserve(rows.size());
  for (const auto& r : rows) f.append_row(r);
  return f;
}

TEST(UserImpact, SingleGpuJobMatchesPopulationMean) {
  // k = 1: E[max] is just the mean of the per-GPU medians.
  std::vector<RunRecord> rs;
  for (int i = 0; i < 5; ++i) rs.push_back(rec(i, 100.0 + i * 10.0));
  const auto impact = job_impact(frame_from(rs), 1);
  EXPECT_NEAR(impact.expected_slowdown, 120.0 / 120.0, 1e-12);
}

TEST(UserImpact, FullWidthJobAlwaysGetsTheWorstGpu) {
  std::vector<RunRecord> rs;
  for (int i = 0; i < 6; ++i) rs.push_back(rec(i, 100.0 + i));
  const auto impact = job_impact(frame_from(rs), 6);
  // With k = n the max is deterministic: the slowest GPU.
  EXPECT_NEAR(impact.expected_slowdown, 105.0 / 102.5, 1e-12);
  EXPECT_NEAR(impact.p95_slowdown, impact.expected_slowdown, 1e-12);
}

TEST(UserImpact, ExpectedSlowdownGrowsWithJobWidth) {
  Rng rng(1);
  std::vector<RunRecord> rs;
  for (int i = 0; i < 200; ++i) {
    rs.push_back(rec(i, rng.normal(2500.0, 40.0)));
  }
  double prev = 0.0;
  for (int k : {1, 2, 4, 8, 16}) {
    const auto impact = job_impact(frame_from(rs), k);
    EXPECT_GT(impact.expected_slowdown, prev);
    EXPECT_GE(impact.p95_slowdown, impact.expected_slowdown - 1e-12);
    prev = impact.expected_slowdown;
  }
}

TEST(UserImpact, MatchesMonteCarlo) {
  Rng rng(2);
  std::vector<RunRecord> rs;
  std::vector<double> perf;
  for (int i = 0; i < 50; ++i) {
    const double p = rng.lognormal(std::log(2500.0), 0.02);
    rs.push_back(rec(i, p));
    perf.push_back(p);
  }
  const auto impact = job_impact(frame_from(rs), 4);

  // Monte Carlo of the same quantity.
  Rng mc(3);
  double sum = 0.0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    const auto picks = mc.sample_without_replacement(perf.size(), 4);
    double worst = 0.0;
    for (auto idx : picks) worst = std::max(worst, perf[idx]);
    sum += worst;
  }
  const double med = stats::median(perf);
  EXPECT_NEAR(impact.expected_slowdown, sum / trials / med, 0.002);
}

TEST(UserImpact, PAnySlowMatchesCombinatorics) {
  // 8 fast + 2 slow GPUs: P(any slow | k) = 1 - C(8,k)/C(10,k).
  std::vector<RunRecord> rs;
  for (int i = 0; i < 8; ++i) rs.push_back(rec(i, 100.0));
  for (int i = 8; i < 10; ++i) rs.push_back(rec(i, 120.0));
  EXPECT_NEAR(job_impact(frame_from(rs), 1).p_any_slow, 0.2, 1e-12);
  EXPECT_NEAR(job_impact(frame_from(rs), 4).p_any_slow,
              1.0 - (70.0 / 210.0), 1e-12);  // C(8,4)/C(10,4)
  EXPECT_NEAR(job_impact(frame_from(rs), 9).p_any_slow, 1.0, 1e-12);
}

TEST(UserImpact, TableCoversPowersOfTwo) {
  Rng rng(4);
  std::vector<RunRecord> rs;
  for (int i = 0; i < 64; ++i) rs.push_back(rec(i, rng.normal(100.0, 2.0)));
  const auto table = impact_table(frame_from(rs), 8);
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[0].gpus_per_job, 1);
  EXPECT_EQ(table[3].gpus_per_job, 8);
}

TEST(UserImpact, PaperHeadlineShapeOnLonghorn) {
  // §VII: single-GPU jobs have a real chance of a >6% slower GPU and
  // 4-GPU jobs a far higher one.
  Cluster longhorn(longhorn_spec());
  auto cfg = default_config(longhorn, sgemm_workload(25536, 8), 1);
  const auto result = run_experiment(longhorn, cfg);
  const auto one = job_impact(result.frame, 1);
  const auto four = job_impact(result.frame, 4);
  EXPECT_GT(one.p_any_slow, 0.03);
  EXPECT_GT(four.p_any_slow, 1.5 * one.p_any_slow);
  EXPECT_GT(four.expected_slowdown, one.expected_slowdown);
  // Consistency with the simpler independent-draw estimate.
  EXPECT_NEAR(four.p_any_slow,
              slow_assignment_probability(result.frame, 4, 0.06), 0.06);
}

TEST(UserImpact, RejectsBadInput) {
  std::vector<RunRecord> rs{rec(0, 100.0)};
  EXPECT_THROW(job_impact(frame_from(rs), 2), std::invalid_argument);
  EXPECT_THROW(job_impact(frame_from(rs), 0), std::invalid_argument);
  EXPECT_THROW(job_impact(frame_from(rs), 1, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
