#include "gpu/device.hpp"
#include "common/units.hpp"
#include "gpu/kernel.hpp"
#include "gpu/sampler.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"
#include "thermal/thermal.hpp"

#include <gtest/gtest.h>

namespace gpuvar {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  SimulatedGpu make_device(const SimOptions& opts = {}) {
    return SimulatedGpu(sku_, chip_, thermal_, opts);
  }

  GpuSku sku_ = make_v100_sxm2();
  SiliconSample chip_;
  ThermalParams thermal_{0.10, 80.0, Celsius{28.0}};
};

TEST_F(DeviceTest, GemmThrottlesBelowBoost) {
  auto dev = make_device();
  const auto k = make_sgemm_kernel(25536);
  const auto r = dev.run_kernel(k, nullptr);
  // A typical chip settles well below 1530 MHz under the 300 W cap.
  EXPECT_LT(dev.frequency(), sku_.max_mhz - MegaHertz{50.0});
  EXPECT_GT(dev.frequency(), MegaHertz{1250.0});
  EXPECT_GT(r.duration, Seconds{2.0});
  EXPECT_LT(r.duration, Seconds{3.2});
}

TEST_F(DeviceTest, SteadyPowerStaysNearCap) {
  auto dev = make_device();
  const auto k = make_sgemm_kernel(25536);
  Sampler sampler;
  // Warm up to steady state, then measure.
  dev.run_kernel(k, nullptr);
  dev.run_kernel(k, &sampler);
  const auto s = sampler.summary();
  EXPECT_LE(s.power.median, sku_.tdp.value() + 1.0);
  EXPECT_GE(s.power.median, sku_.tdp.value() - 15.0);
}

TEST_F(DeviceTest, MemoryBoundKernelPinsAtBoost) {
  auto dev = make_device();
  KernelSpec k;
  k.name = "stream";
  k.bytes = 5e10;
  k.flops = 1e9;
  k.activity = 0.5;
  k.validate();
  dev.run_kernel(k, nullptr);
  EXPECT_DOUBLE_EQ(dev.frequency().value(), sku_.max_mhz.value());
}

TEST_F(DeviceTest, WorkScaleStretchesDuration) {
  auto a = make_device();
  auto b = make_device();
  const auto k = make_sgemm_kernel(8192);
  const auto ra = a.run_kernel(k, nullptr, 1.0);
  const auto rb = b.run_kernel(k, nullptr, 1.3);
  EXPECT_NEAR(rb.duration / ra.duration, 1.3, 0.1);
}

TEST_F(DeviceTest, StallScaleStretchesAndDimsPower) {
  KernelSpec k;
  k.name = "framework";
  k.flops = 5e11;
  k.activity = 0.6;
  k.validate();
  auto a = make_device();
  auto b = make_device();
  const auto ra = a.run_kernel(k, nullptr, 1.0, 1.0);
  const auto rb = b.run_kernel(k, nullptr, 1.0, 1.5);
  EXPECT_NEAR(rb.duration / ra.duration, 1.5, 0.05);
  EXPECT_LT(rb.mean_power, ra.mean_power);
}

TEST_F(DeviceTest, ActivityScaleChangesPowerNotDuration) {
  KernelSpec k;
  k.name = "conv";
  k.flops = 5e11;
  k.activity = 0.5;
  k.validate();
  auto a = make_device();
  auto b = make_device();
  const auto ra = a.run_kernel(k, nullptr, 1.0, 1.0, 1.0);
  const auto rb = b.run_kernel(k, nullptr, 1.0, 1.0, 1.3);
  EXPECT_NEAR(rb.duration.value(), ra.duration.value(), 1e-6);
  EXPECT_GT(rb.mean_power, ra.mean_power * 1.1);
}

TEST_F(DeviceTest, PowerCapLowersSettledFrequencyAndPower) {
  auto capped = make_device();
  capped.set_power_limit(Watts{250.0});
  auto normal = make_device();
  const auto k = make_sgemm_kernel(25536);
  capped.run_kernel(k, nullptr);  // boost->capped transient
  normal.run_kernel(k, nullptr);
  const auto rc = capped.run_kernel(k, nullptr);
  const auto rn = normal.run_kernel(k, nullptr);
  EXPECT_LT(capped.frequency(), normal.frequency());
  EXPECT_GT(rc.duration, rn.duration);
  EXPECT_LT(rc.mean_power, Watts{255.0});
}

TEST_F(DeviceTest, EnergyEqualsMeanPowerTimesDuration) {
  auto dev = make_device();
  const auto k = make_sgemm_kernel(8192);
  const auto r = dev.run_kernel(k, nullptr);
  EXPECT_NEAR(r.energy.value(), (r.mean_power * r.duration).value(),
              1e-6 * r.energy.value());
}

TEST_F(DeviceTest, FastForwardMatchesFullSimulation) {
  SimOptions full;
  full.fast_forward = false;
  SimOptions ff;
  ff.fast_forward = true;
  auto dev_full = make_device(full);
  auto dev_ff = make_device(ff);
  const auto k = make_sgemm_kernel(25536);
  const auto rf = dev_full.run_kernel(k, nullptr);
  const auto rq = dev_ff.run_kernel(k, nullptr);
  // Runtime/energy within 1%; the fast path must not distort physics.
  EXPECT_NEAR(rq.duration.value(), rf.duration.value(), 0.01 * rf.duration.value());
  EXPECT_NEAR(rq.energy.value(), rf.energy.value(), 0.015 * rf.energy.value());
  EXPECT_NEAR(dev_ff.frequency().value(), dev_full.frequency().value(),
              2 * sku_.ladder_step_mhz.value());
}

TEST_F(DeviceTest, FastForwardEngagesForSteadyKernels) {
  // Small thermal mass so the temperature fixed point is reached within a
  // couple of kernels; the third repetition must take the fast path.
  SimulatedGpu dev(sku_, chip_, ThermalParams{0.10, 8.0, Celsius{28.0}});
  const auto k = make_sgemm_kernel(25536);
  dev.run_kernel(k, nullptr);
  dev.run_kernel(k, nullptr);
  const auto r = dev.run_kernel(k, nullptr);
  EXPECT_TRUE(r.fast_forwarded);
}

TEST_F(DeviceTest, IdleCoolsTheChip) {
  auto dev = make_device();
  dev.run_kernel(make_sgemm_kernel(25536), nullptr);
  const double hot = dev.temperature().value();
  dev.idle_for(Seconds{60.0}, nullptr);
  EXPECT_LT(dev.temperature(), Celsius{hot - 5.0});
}

TEST_F(DeviceTest, IdleLetsDvfsClimbBack) {
  auto dev = make_device();
  dev.run_kernel(make_sgemm_kernel(25536), nullptr);
  EXPECT_LT(dev.frequency(), sku_.max_mhz);
  dev.idle_for(Seconds{5.0}, nullptr);
  EXPECT_DOUBLE_EQ(dev.frequency().value(), sku_.max_mhz.value());
}

TEST_F(DeviceTest, ResetRestoresColdState) {
  auto dev = make_device();
  dev.run_kernel(make_sgemm_kernel(25536), nullptr);
  dev.reset();
  EXPECT_DOUBLE_EQ(dev.clock().value(), 0.0);
  EXPECT_DOUBLE_EQ(dev.frequency().value(), sku_.max_mhz.value());
  EXPECT_LT(dev.temperature(), Celsius{45.0});
}

TEST_F(DeviceTest, ClockAdvancesAcrossKernels) {
  auto dev = make_device();
  const auto k = make_sgemm_kernel(8192);
  const auto r1 = dev.run_kernel(k, nullptr);
  const auto r2 = dev.run_kernel(k, nullptr);
  EXPECT_DOUBLE_EQ(r2.start.value(), (r1.start + r1.duration).value());
  EXPECT_DOUBLE_EQ(dev.clock().value(), (r2.start + r2.duration).value());
}

TEST_F(DeviceTest, HotterCoolingMeansLowerSettledFrequency) {
  // Leakage rises with temperature; the DVFS equilibrium drops.
  ThermalParams hot_loop{0.17, 80.0, Celsius{45.0}};
  SimulatedGpu hot(sku_, chip_, hot_loop);
  SimulatedGpu cool(sku_, chip_, ThermalParams{0.07, 80.0, Celsius{22.0}});
  const auto k = make_sgemm_kernel(25536);
  // Two kernels back to back so temperatures approach equilibrium.
  hot.run_kernel(k, nullptr);
  hot.run_kernel(k, nullptr);
  cool.run_kernel(k, nullptr);
  cool.run_kernel(k, nullptr);
  EXPECT_LT(hot.frequency(), cool.frequency());
}

TEST_F(DeviceTest, RejectsBadScales) {
  auto dev = make_device();
  const auto k = make_sgemm_kernel(8192);
  EXPECT_THROW(dev.run_kernel(k, nullptr, 0.0), std::invalid_argument);
  EXPECT_THROW(dev.run_kernel(k, nullptr, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(dev.idle_for(Seconds{-1.0}, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
