#include "workloads/workload.hpp"

#include <gtest/gtest.h>

namespace gpuvar {
namespace {

TEST(Workloads, AllFactoriesValidate) {
  for (const auto& w :
       {sgemm_workload(), resnet50_multi_workload(), resnet50_single_workload(),
        bert_workload(), lammps_workload(), pagerank_workload()}) {
    EXPECT_NO_THROW(w.validate()) << w.name;
  }
}

TEST(Workloads, TableTwoConfiguration) {
  // Table II: SGEMM 25536^3, 100 reps; ResNet 500 iters multi-GPU;
  // BERT 250 iters multi-GPU; LAMMPS and PageRank single-GPU.
  const auto sgemm = sgemm_workload();
  EXPECT_EQ(sgemm.iterations, 100);
  EXPECT_EQ(sgemm.gpus_per_job, 1);
  EXPECT_DOUBLE_EQ(sgemm.iteration[0].kernel.flops,
                   2.0 * 25536.0 * 25536.0 * 25536.0);

  EXPECT_EQ(resnet50_multi_workload().gpus_per_job, 4);
  EXPECT_EQ(resnet50_multi_workload().iterations, 500);
  EXPECT_EQ(resnet50_single_workload().gpus_per_job, 1);
  EXPECT_EQ(bert_workload().gpus_per_job, 4);
  EXPECT_EQ(bert_workload().iterations, 250);
  EXPECT_EQ(lammps_workload().gpus_per_job, 1);
  EXPECT_EQ(pagerank_workload().gpus_per_job, 1);
}

TEST(Workloads, MetricsMatchPaper) {
  EXPECT_EQ(sgemm_workload().metric, PerfMetric::kKernelMedian);
  EXPECT_EQ(resnet50_multi_workload().metric, PerfMetric::kIterationMedian);
  EXPECT_EQ(bert_workload().metric, PerfMetric::kIterationMedian);
  EXPECT_EQ(lammps_workload().metric, PerfMetric::kLongKernelSum);
  EXPECT_EQ(pagerank_workload().metric, PerfMetric::kKernelMedian);
}

TEST(Workloads, SingleGpuResnetScalesBatchDown) {
  // Batch 64 -> 16: single-GPU per-iteration work must be smaller.
  EXPECT_LT(resnet50_single_workload().iteration_flops(),
            resnet50_multi_workload().iteration_flops());
}

TEST(Workloads, LammpsLongKernelsDominate) {
  // Long kernels are 98% of the runtime; the short swarm is excluded
  // from the metric.
  const auto w = lammps_workload();
  double long_bytes = 0.0, short_bytes = 0.0;
  for (const auto& s : w.iteration) {
    (s.long_kernel ? long_bytes : short_bytes) += s.kernel.bytes;
  }
  EXPECT_GT(long_bytes / (long_bytes + short_bytes), 0.9);
}

TEST(Workloads, LammpsKernelDurationsSpanPaperRange) {
  // 4 unique long kernels, 20-200 ms at reference bandwidth.
  const auto w = lammps_workload();
  int long_count = 0;
  for (const auto& s : w.iteration) {
    if (s.long_kernel) ++long_count;
  }
  EXPECT_EQ(long_count, 4);
}

TEST(Workloads, SgemmHasNoFrameworkSensitivity) {
  EXPECT_DOUBLE_EQ(sgemm_workload().gpu_sensitivity_sigma, 0.0);
  EXPECT_GT(resnet50_multi_workload().gpu_sensitivity_sigma, 0.0);
  // Multi-GPU training has the widest non-frequency spread.
  EXPECT_GT(resnet50_multi_workload().gpu_sensitivity_sigma,
            resnet50_single_workload().gpu_sensitivity_sigma);
  EXPECT_GT(resnet50_single_workload().gpu_sensitivity_sigma,
            bert_workload().gpu_sensitivity_sigma);
}

TEST(Workloads, ValidateCatchesBadSpecs) {
  WorkloadSpec w;
  w.name = "bad";
  EXPECT_THROW(w.validate(), std::invalid_argument);  // empty iteration

  w = sgemm_workload();
  w.gpus_per_job = 0;
  EXPECT_THROW(w.validate(), std::invalid_argument);

  w = sgemm_workload();
  for (auto& s : w.iteration) s.long_kernel = false;
  EXPECT_THROW(w.validate(), std::invalid_argument);  // no metric kernel
}

TEST(Workloads, MetricNames) {
  EXPECT_EQ(to_string(PerfMetric::kKernelMedian), "median kernel duration");
  EXPECT_EQ(to_string(PerfMetric::kLongKernelSum),
            "total long-kernel duration");
}

TEST(Workloads, IterationTotalsArePositive) {
  for (const auto& w :
       {resnet50_multi_workload(), bert_workload(), lammps_workload()}) {
    EXPECT_GT(w.iteration_flops(), 0.0) << w.name;
    EXPECT_GT(w.iteration_bytes(), 0.0) << w.name;
  }
}

}  // namespace
}  // namespace gpuvar
