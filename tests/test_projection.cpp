#include "core/projection.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {
namespace {

std::vector<RunRecord> gaussian_records(int n, double mean, double sigma,
                                        std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<RunRecord> rs;
  for (int i = 0; i < n; ++i) {
    RunRecord r;
    r.gpu_index = i;
    r.perf_ms = rng.normal(mean, sigma);
    r.freq_mhz = 1400.0;
    r.power_w = 298.0;
    r.temp_c = 60.0;
    rs.push_back(r);
  }
  return rs;
}

/// Test-local frame construction (the bulk row adapters are gone).
RecordFrame frame_from(const std::vector<RunRecord>& rows) {
  RecordFrame f;
  f.reserve(rows.size());
  for (const auto& r : rows) f.append_row(r);
  return f;
}

TEST(Projection, LonghornToSummitGrows) {
  // §IV-D: Longhorn's spread projected to Summit size gives slightly
  // higher variability than measured at Longhorn size.
  const auto rs = gaussian_records(416, 2200.0, 38.0);
  const auto proj = project_to_cluster_size(frame_from(rs), 27648);
  EXPECT_EQ(proj.source_gpus, 416u);
  EXPECT_EQ(proj.target_gpus, 27648u);
  EXPECT_GT(proj.projected_variation_pct, proj.source_variation_pct);
  // sigma/mu = 1.7% -> ~9-10% source box variation, ~13-15% at 27k GPUs.
  EXPECT_NEAR(proj.source_variation_pct, 9.3, 1.5);
  EXPECT_NEAR(proj.projected_variation_pct, 13.8, 2.0);
}

TEST(Projection, OutliersExcludedFromFit) {
  auto rs = gaussian_records(200, 2200.0, 20.0);
  // Inject gross outliers; the projection must barely move.
  auto with_outliers = rs;
  for (int i = 0; i < 3; ++i) {
    RunRecord r = rs[0];
    r.gpu_index = 1000 + i;
    r.perf_ms = 4000.0;
    with_outliers.push_back(r);
  }
  const auto clean = project_to_cluster_size(frame_from(rs), 10000);
  const auto dirty = project_to_cluster_size(frame_from(with_outliers), 10000);
  EXPECT_NEAR(dirty.projected_variation_pct, clean.projected_variation_pct,
              0.15 * clean.projected_variation_pct);
}

TEST(Projection, SameSizeRoughlyReproducesMeasured) {
  const auto rs = gaussian_records(400, 1000.0, 15.0, 7);
  const auto proj = project_to_cluster_size(frame_from(rs), 400);
  EXPECT_NEAR(proj.projected_variation_pct, proj.source_variation_pct,
              0.35 * proj.source_variation_pct);
}

TEST(Projection, RejectsDegenerateInput) {
  const auto rs = gaussian_records(2, 100.0, 1.0);
  EXPECT_THROW(project_to_cluster_size(frame_from(rs), 100), std::invalid_argument);
  const auto ok = gaussian_records(10, 100.0, 1.0);
  EXPECT_THROW(project_to_cluster_size(frame_from(ok), 1), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
