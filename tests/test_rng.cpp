#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace gpuvar {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(DeriveSeed, StablePerPath) {
  EXPECT_EQ(derive_seed(7, "cluster/gpu:0"), derive_seed(7, "cluster/gpu:0"));
}

TEST(DeriveSeed, SensitiveToPathAndMaster) {
  EXPECT_NE(derive_seed(7, "a"), derive_seed(7, "b"));
  EXPECT_NE(derive_seed(7, "a"), derive_seed(8, "a"));
}

TEST(DeriveSeed, ManyPathsNoCollisions) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(derive_seed(123, "gpu:" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Rng, ReproducibleFromPath) {
  Rng a(99, "some/path"), b(99, "some/path");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(3.0, -5.0), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndSigma) {
  Rng rng(6);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.truncated_normal(0.0, 1.0, -0.5, 0.5);
    EXPECT_GE(x, -0.5);
    EXPECT_LE(x, 0.5);
  }
}

TEST(Rng, TruncatedNormalZeroSigmaClamps) {
  Rng rng(8);
  EXPECT_DOUBLE_EQ(rng.truncated_normal(5.0, 0.0, -1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(rng.truncated_normal(0.2, 0.0, -1.0, 1.0), 0.2);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(12);
  const auto picks = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<std::uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto p : picks) EXPECT_LT(p, 100u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(13);
  const auto picks = rng.sample_without_replacement(10, 10);
  std::set<std::uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(14);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
