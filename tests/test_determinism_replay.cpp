// Determinism replay: the same seeded campaign must produce
// byte-identical artifacts whatever the thread count. This is the
// executable form of the simulator's core contract — every output is a
// pure function of (spec, seed) — and the regression net under the
// determinism lints: per-node result buckets concatenated in node
// order, seed-path-keyed RNG, tie-broken sorts, and locale-free
// formatting all have to hold for these byte comparisons to pass.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/markdown_report.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/export.hpp"
#include "cluster/cluster.hpp"
#include "telemetry/run_result.hpp"
#include "workloads/runner.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {
namespace {

struct CampaignArtifacts {
  std::string csv;
  std::string frame_csv;
  std::string markdown;
  std::string trace_json;
  std::string metrics_text;
};

/// Runs the full campaign on a private pool of `threads` workers and
/// renders every interchange artifact: the per-run results CSV (via the
/// same pool-parallel per-node path the CLI uses), the markdown report
/// over the experiment's records, and the observability exports (the
/// Chrome trace and the metrics dump collected during the campaign).
CampaignArtifacts run_campaign(std::size_t threads) {
  const Cluster cluster{cloudlab_spec()};
  ThreadPool pool(threads);

  auto cfg = default_config(cluster, sgemm_workload(16384, 2), 2);
  cfg.pool = &pool;

  // Trace + metrics ride along exactly as under `gpuvar simulate
  // --trace --metrics`: lanes are logical timelines on simulation
  // time, metric merges are commutative integers, so both exports
  // must be byte-identical at any pool size.
  obs::TraceSink sink;
  obs::Registry registry;
  ExperimentResult result;
  {
    obs::ScopedTrace trace_guard(&sink);
    obs::ScopedMetrics metrics_guard(&registry);
    result = run_experiment(cluster, cfg);
  }
  std::ostringstream trace_json;
  obs::write_chrome_trace(trace_json, sink);
  std::ostringstream metrics_text;
  obs::write_metrics_text(metrics_text, registry.snapshot());

  MarkdownReportOptions md_opts;
  md_opts.bootstrap_resamples = 50;
  std::ostringstream md;
  write_markdown_report(md, result.frame, md_opts);

  // Columnar artifact: the frame streamed out of the parallel
  // FrameBuilder sink must serialize identically at any pool size.
  std::ostringstream frame_csv;
  export_frame_csv(frame_csv, cluster.name(), result.frame);

  // CSV rows come from the raw per-run results; collect them in
  // parallel with per-node buckets, concatenated in node order.
  std::vector<std::vector<GpuRunResult>> buckets(
      static_cast<std::size_t>(cluster.node_count()));
  pool.parallel_for(buckets.size(), [&](std::size_t node) {
    for (int run = 0; run < cfg.runs_per_gpu; ++run) {
      for (auto& r : run_on_node(cluster, static_cast<int>(node),
                                 cfg.workload, run, cfg.run_options)) {
        buckets[node].push_back(std::move(r));
      }
    }
  });
  std::vector<GpuRunResult> rows;
  for (auto& b : buckets) {
    for (auto& r : b) rows.push_back(std::move(r));
  }
  std::ostringstream csv;
  export_results_csv(csv, cluster.name(), cluster.locations(), rows);
  return {csv.str(), frame_csv.str(), md.str(), trace_json.str(),
          metrics_text.str()};
}

TEST(DeterminismReplay, ByteIdenticalAcrossPoolSizes) {
  const CampaignArtifacts one = run_campaign(1);
  const CampaignArtifacts four = run_campaign(4);
  const CampaignArtifacts eight = run_campaign(8);

  ASSERT_FALSE(one.csv.empty());
  ASSERT_FALSE(one.markdown.empty());

  EXPECT_EQ(one.csv, four.csv) << "results CSV differs between 1 and 4 "
                                  "threads: scheduling leaked into output";
  EXPECT_EQ(one.csv, eight.csv) << "results CSV differs between 1 and 8 "
                                   "threads: scheduling leaked into output";
  EXPECT_EQ(one.frame_csv, four.frame_csv)
      << "frame CSV differs between 1 and 4 threads: the FrameBuilder "
         "bucket merge leaked scheduling into the column order";
  EXPECT_EQ(one.frame_csv, eight.frame_csv)
      << "frame CSV differs between 1 and 8 threads: the FrameBuilder "
         "bucket merge leaked scheduling into the column order";
  EXPECT_EQ(one.markdown, four.markdown)
      << "markdown report differs between 1 and 4 threads";
  EXPECT_EQ(one.markdown, eight.markdown)
      << "markdown report differs between 1 and 8 threads";

  ASSERT_FALSE(one.trace_json.empty());
  ASSERT_FALSE(one.metrics_text.empty());
  EXPECT_EQ(one.trace_json, four.trace_json)
      << "Chrome trace differs between 1 and 4 threads: a lane was "
         "shared across tasks or a timestamp came from a wall clock";
  EXPECT_EQ(one.trace_json, eight.trace_json)
      << "Chrome trace differs between 1 and 8 threads: a lane was "
         "shared across tasks or a timestamp came from a wall clock";
  EXPECT_EQ(one.metrics_text, four.metrics_text)
      << "metrics dump differs between 1 and 4 threads: a metric merge "
         "is not commutative";
  EXPECT_EQ(one.metrics_text, eight.metrics_text)
      << "metrics dump differs between 1 and 8 threads: a metric merge "
         "is not commutative";
}

TEST(DeterminismReplay, SpillThresholdNeverChangesArtifactBytes) {
  // The engine's spill path (serialize each bucket to a shard, evict,
  // read it back at merge) must be invisible in the output: a campaign
  // that spilled every bucket and one that spilled none produce the
  // same CSV, report, and summary bytes at every pool size.
  const Cluster cluster{cloudlab_spec()};
  const auto spill_dir =
      std::filesystem::path(::testing::TempDir()) / "gpuvar_replay_spill";

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(threads);
    auto cfg = default_config(cluster, sgemm_workload(16384, 2), 2);
    cfg.pool = &pool;

    const CampaignResult in_memory = run_campaign(cluster, cfg);

    std::filesystem::remove_all(spill_dir);
    std::filesystem::create_directories(spill_dir);
    CampaignOptions spill_all;
    spill_all.checkpoint_dir = spill_dir.string();
    spill_all.shard_budget_bytes = 0;
    const CampaignResult spilled = run_campaign(cluster, cfg, spill_all);
    EXPECT_EQ(spilled.stats.buckets_spilled, spilled.stats.buckets_run)
        << "budget 0 must spill every bucket";

    MarkdownReportOptions md_opts;
    md_opts.bootstrap_resamples = 50;
    std::ostringstream csv_a, csv_b, md_a, md_b, sum_a, sum_b;
    export_frame_csv(csv_a, cluster.name(), in_memory.frame);
    export_frame_csv(csv_b, cluster.name(), spilled.frame);
    write_markdown_report(md_a, in_memory.frame, md_opts);
    write_markdown_report(md_b, spilled.frame, md_opts);
    write_campaign_summary(sum_a, in_memory);
    write_campaign_summary(sum_b, spilled);
    EXPECT_EQ(csv_a.str(), csv_b.str())
        << threads << " threads: spill threshold leaked into the CSV";
    EXPECT_EQ(md_a.str(), md_b.str())
        << threads << " threads: spill threshold leaked into the report";
    EXPECT_EQ(sum_a.str(), sum_b.str())
        << threads << " threads: spill threshold leaked into the summary";
  }
  std::filesystem::remove_all(spill_dir);
}

TEST(DeterminismReplay, RepeatOnSamePoolIsIdentical) {
  // Same pool size twice: catches state leaking between campaigns
  // (e.g. a global RNG advancing) rather than between schedules.
  const CampaignArtifacts a = run_campaign(4);
  const CampaignArtifacts b = run_campaign(4);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.frame_csv, b.frame_csv);
  EXPECT_EQ(a.markdown, b.markdown);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_text, b.metrics_text);
}

}  // namespace
}  // namespace gpuvar
