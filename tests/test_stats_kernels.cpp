#include "stats/kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "stats/quantile.hpp"

namespace gpuvar::stats {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Pins a backend for one scope and restores the previous one on exit,
/// so test order never leaks a backend into later tests.
class BackendGuard {
 public:
  explicit BackendGuard(kernels::Backend b) : prev_(kernels::set_backend(b)) {}
  ~BackendGuard() { kernels::set_backend(prev_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  kernels::Backend prev_;
};

std::vector<double> sample(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.normal(2500.0, 40.0));
  return xs;
}

// The lengths cover: one partial block, exactly one block, block+tail
// of every phase, and sizes big enough for the ninther pivot path.
const std::size_t kLengths[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1003};

TEST(StatsKernels, ScalarBackendAlwaysAvailable) {
  EXPECT_TRUE(kernels::backend_available(kernels::Backend::kScalar));
  const auto all = kernels::available_backends();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front(), kernels::Backend::kScalar);
  for (auto b : all) EXPECT_TRUE(kernels::backend_available(b));
}

TEST(StatsKernels, SetBackendReturnsPrevious) {
  const auto before = kernels::active_backend();
  const auto prev = kernels::set_backend(kernels::Backend::kScalar);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(kernels::active_backend(), kernels::Backend::kScalar);
  kernels::set_backend(before);
  EXPECT_STRNE(kernels::backend_name(before), "");
}

TEST(StatsKernels, SetBackendRejectsUnavailable) {
#if !defined(__aarch64__)
  EXPECT_THROW(kernels::set_backend(kernels::Backend::kNeon),
               std::invalid_argument);
#else
  EXPECT_THROW(kernels::set_backend(kernels::Backend::kSse2),
               std::invalid_argument);
#endif
}

TEST(StatsKernels, ReductionsBitIdenticalAcrossBackends) {
  for (std::size_t n : kLengths) {
    const auto xs = sample(n, 7 + n);
    const auto ys = sample(n, 900 + n);

    BackendGuard pin(kernels::Backend::kScalar);
    const auto ref_sweep = kernels::describe_sweep(xs);
    const double ref_sum = kernels::sum(xs);
    const double ref_css = kernels::centered_sumsq(xs, 2500.0);
    const auto ref_cp = kernels::centered_products(xs, ys, 2500.0, 2500.0);
    const auto ref_mm = kernels::min_max(xs);

    for (auto b : kernels::available_backends()) {
      kernels::set_backend(b);
      const auto s = kernels::describe_sweep(xs);
      EXPECT_EQ(bits(s.sum), bits(ref_sweep.sum)) << n << kernels::backend_name(b);
      EXPECT_EQ(bits(s.sumsq), bits(ref_sweep.sumsq));
      EXPECT_EQ(bits(s.min), bits(ref_sweep.min));
      EXPECT_EQ(bits(s.max), bits(ref_sweep.max));
      EXPECT_EQ(bits(kernels::sum(xs)), bits(ref_sum));
      EXPECT_EQ(bits(kernels::centered_sumsq(xs, 2500.0)), bits(ref_css));
      const auto cp = kernels::centered_products(xs, ys, 2500.0, 2500.0);
      EXPECT_EQ(bits(cp.sxy), bits(ref_cp.sxy));
      EXPECT_EQ(bits(cp.sxx), bits(ref_cp.sxx));
      EXPECT_EQ(bits(cp.syy), bits(ref_cp.syy));
      const auto mm = kernels::min_max(xs);
      EXPECT_EQ(bits(mm.min), bits(ref_mm.min));
      EXPECT_EQ(bits(mm.max), bits(ref_mm.max));
    }
  }
}

TEST(StatsKernels, UnalignedSpanHeadsBitIdentical) {
  // Vector loads are unaligned by contract; slicing 1..3 elements off
  // the head of a buffer must not change any backend's answer.
  const auto base = sample(256 + 3, 42);
  for (std::size_t off = 0; off <= 3; ++off) {
    const std::span<const double> xs(base.data() + off, 253);
    BackendGuard pin(kernels::Backend::kScalar);
    const auto ref = kernels::describe_sweep(xs);
    for (auto b : kernels::available_backends()) {
      kernels::set_backend(b);
      const auto s = kernels::describe_sweep(xs);
      EXPECT_EQ(bits(s.sum), bits(ref.sum)) << "offset " << off;
      EXPECT_EQ(bits(s.sumsq), bits(ref.sumsq));
      EXPECT_EQ(bits(s.min), bits(ref.min));
      EXPECT_EQ(bits(s.max), bits(ref.max));
    }
  }
}

TEST(StatsKernels, NanAndInfPropagateIdenticallyAcrossBackends) {
  // Exact NaN/Inf semantics follow the lane formulas (minpd-style
  // compare-select); what the contract pins is that every backend
  // produces the same bits, wherever the special lands.
  auto xs = sample(37, 3);
  for (std::size_t poison : {std::size_t{0}, std::size_t{13}, std::size_t{36}}) {
    for (double special : {kNan, kInf, -kInf}) {
      xs[poison] = special;
      BackendGuard pin(kernels::Backend::kScalar);
      const auto ref = kernels::describe_sweep(xs);
      const double ref_css = kernels::centered_sumsq(xs, 2500.0);
      for (auto b : kernels::available_backends()) {
        kernels::set_backend(b);
        const auto s = kernels::describe_sweep(xs);
        EXPECT_EQ(bits(s.sum), bits(ref.sum))
            << kernels::backend_name(b) << " poison@" << poison;
        EXPECT_EQ(bits(s.sumsq), bits(ref.sumsq));
        EXPECT_EQ(bits(s.min), bits(ref.min));
        EXPECT_EQ(bits(s.max), bits(ref.max));
        EXPECT_EQ(bits(kernels::centered_sumsq(xs, 2500.0)), bits(ref_css));
      }
    }
    xs = sample(37, 3);
  }
}

TEST(StatsKernels, InfSumsStayInfWithMatchingSign) {
  std::vector<double> xs = {1.0, kInf, 2.0, 3.0, 4.0};
  EXPECT_EQ(kernels::sum(xs), kInf);
  const auto mm = kernels::min_max(xs);
  EXPECT_EQ(mm.max, kInf);
  EXPECT_EQ(mm.min, 1.0);
  xs[1] = -kInf;
  EXPECT_EQ(kernels::sum(xs), -kInf);
  EXPECT_EQ(kernels::min_max(xs).min, -kInf);
}

TEST(StatsKernels, EmptyAndSingleElementContracts) {
  const std::vector<double> empty;
  EXPECT_EQ(kernels::sum(empty), 0.0);
  EXPECT_EQ(kernels::centered_sumsq(empty, 5.0), 0.0);
  EXPECT_THROW(kernels::describe_sweep(empty), std::invalid_argument);
  EXPECT_THROW(kernels::min_max(empty), std::invalid_argument);

  const std::vector<double> one = {42.5};
  const auto s = kernels::describe_sweep(one);
  EXPECT_EQ(s.sum, 42.5);
  EXPECT_EQ(s.min, 42.5);
  EXPECT_EQ(s.max, 42.5);
  EXPECT_EQ(s.sumsq, 42.5 * 42.5);
  std::vector<double> scratch = one;
  EXPECT_EQ(kernels::quantile_inplace(scratch, 0.75), 42.5);
}

TEST(StatsKernels, SelectionMatchesSortedQuantilesBitForBit) {
  for (std::size_t n : kLengths) {
    const auto xs = sample(n, 1000 + n);
    const auto sorted = sorted_copy(xs);
    for (double q : {0.0, 0.05, 0.25, 0.5, 0.731, 0.75, 0.95, 1.0}) {
      std::vector<double> scratch = xs;
      EXPECT_EQ(bits(kernels::quantile_inplace(scratch, q)),
                bits(quantile_sorted(sorted, q)))
          << "n=" << n << " q=" << q;
    }
  }
}

TEST(StatsKernels, SelectionHandlesDuplicateHeavyAndConstantColumns) {
  // Constant and few-distinct-value columns are the worst case for a
  // two-way partition; the three-way partition must stay O(n).
  std::vector<double> constant(100000, 3.25);
  std::vector<double> scratch = constant;
  EXPECT_EQ(kernels::median_inplace(scratch), 3.25);

  Rng rng(11);
  std::vector<double> coarse;
  for (int i = 0; i < 9999; ++i) {
    coarse.push_back(static_cast<double>(rng.uniform_index(4)));
  }
  const auto sorted = sorted_copy(coarse);
  for (double q : {0.1, 0.5, 0.9}) {
    scratch = coarse;
    EXPECT_EQ(bits(kernels::quantile_inplace(scratch, q)),
              bits(quantile_sorted(sorted, q)));
  }
}

TEST(StatsKernels, NthInplacePartitionsAroundK) {
  auto xs = sample(501, 77);
  const auto sorted = sorted_copy(xs);
  for (std::size_t k : {std::size_t{0}, std::size_t{250}, std::size_t{500}}) {
    std::vector<double> scratch = xs;
    kernels::nth_inplace(scratch, k);
    EXPECT_EQ(scratch[k], sorted[k]);
    for (std::size_t i = 0; i < k; ++i) EXPECT_LE(scratch[i], scratch[k]);
    for (std::size_t i = k + 1; i < scratch.size(); ++i) {
      EXPECT_GE(scratch[i], scratch[k]);
    }
  }
  EXPECT_THROW(kernels::nth_inplace(xs, xs.size()), std::invalid_argument);
}

TEST(StatsKernels, QuantileInplaceRejectsBadArguments) {
  std::vector<double> empty;
  EXPECT_THROW(kernels::quantile_inplace(empty, 0.5), std::invalid_argument);
  std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(kernels::quantile_inplace(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(kernels::quantile_inplace(xs, 1.1), std::invalid_argument);
}

TEST(StatsKernels, MaskRangeMatchesReferenceLoopIncludingClamps) {
  std::vector<std::int16_t> days;
  Rng rng(5);
  for (int i = 0; i < 1003; ++i) {
    days.push_back(static_cast<std::int16_t>(rng.uniform_index(7)));
  }
  const auto check = [&](std::int64_t lo, std::int64_t hi) {
    std::vector<std::uint8_t> mask(days.size());
    kernels::mask_range_i16(days, lo, hi, mask);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < days.size(); ++i) {
      const bool want = lo <= days[i] && days[i] <= hi;
      EXPECT_EQ(mask[i], want ? 1 : 0) << i;
      expected += want ? 1u : 0u;
    }
    EXPECT_EQ(kernels::mask_count(mask), expected);
  };
  check(2, 4);
  check(3, 3);
  check(5, 2);   // empty range
  check(std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max());  // is_all clamps
  check(40000, 50000);    // both above int16
  check(-50000, -40000);  // both below int16
  check(-50000, 3);       // lo clamps
}

TEST(StatsKernels, MaskGatherAndAndMatchReference) {
  Rng rng(9);
  std::vector<std::uint8_t> verdicts;
  for (int i = 0; i < 29; ++i) {
    verdicts.push_back(rng.uniform_index(2) == 0 ? std::uint8_t{0}
                                                 : std::uint8_t{1});
  }
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 1003; ++i) {
    ids.push_back(static_cast<std::uint32_t>(rng.uniform_index(29)));
  }
  std::vector<std::uint8_t> gathered(ids.size());
  kernels::mask_gather_u32(ids, verdicts, gathered);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(gathered[i], verdicts[ids[i]]);
  }

  std::vector<std::uint8_t> other(ids.size());
  for (std::size_t i = 0; i < other.size(); ++i) {
    other[i] = (i % 3 == 0) ? std::uint8_t{1} : std::uint8_t{0};
  }
  std::vector<std::uint8_t> expect(ids.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect[i] = gathered[i] & other[i];
  }
  // out aliases the first operand — the documented in-place use.
  kernels::mask_and(gathered, other, gathered);
  EXPECT_EQ(gathered, expect);
}

TEST(StatsKernels, MaskToIndicesAndRowsEmitSetPositionsAscending) {
  const std::vector<std::uint8_t> mask = {0, 1, 1, 0, 0, 1, 0, 1};
  std::vector<std::uint32_t> idx;
  kernels::mask_to_indices(mask, idx);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 2, 5, 7}));
  std::vector<std::size_t> rows;
  kernels::mask_to_rows(mask, rows);
  EXPECT_EQ(rows, (std::vector<std::size_t>{1, 2, 5, 7}));

  const std::vector<std::uint8_t> none(9, 0);
  kernels::mask_to_indices(none, idx);
  EXPECT_TRUE(idx.empty());
  const std::vector<std::uint8_t> all(9, 1);
  kernels::mask_to_rows(all, rows);
  ASSERT_EQ(rows.size(), 9u);
  EXPECT_EQ(rows.back(), 8u);

  const std::vector<std::uint8_t> empty;
  kernels::mask_to_indices(empty, idx);
  EXPECT_TRUE(idx.empty());
}

}  // namespace
}  // namespace gpuvar::stats
