#include "gpu/power_model.hpp"
#include "common/units.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gpuvar {
namespace {

class PowerModelTest : public ::testing::Test {
 protected:
  GpuSku sku_ = make_v100_sxm2();
  SiliconSample chip_;  // typical chip: all factors neutral
};

TEST_F(PowerModelTest, DynamicPowerIncreasesWithFrequency) {
  PowerModel pm(sku_, chip_);
  EXPECT_LT(pm.dynamic_power(MegaHertz{1100.0}, 1.0), pm.dynamic_power(MegaHertz{1500.0}, 1.0));
}

TEST_F(PowerModelTest, DynamicPowerScalesWithActivity) {
  PowerModel pm(sku_, chip_);
  const double full = pm.dynamic_power(MegaHertz{1400.0}, 1.0).value();
  EXPECT_NEAR(pm.dynamic_power(MegaHertz{1400.0}, 0.5).value(), full / 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(pm.dynamic_power(MegaHertz{1400.0}, 0.0).value(), 0.0);
}

TEST_F(PowerModelTest, ActivityOutOfRangeThrows) {
  PowerModel pm(sku_, chip_);
  EXPECT_THROW(pm.dynamic_power(MegaHertz{1400.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(pm.dynamic_power(MegaHertz{1400.0}, -0.1), std::invalid_argument);
}

TEST_F(PowerModelTest, LeakageGrowsExponentiallyWithTemperature) {
  PowerModel pm(sku_, chip_);
  const double at60 = pm.leakage_power(Celsius{60.0}).value();
  const double at80 = pm.leakage_power(Celsius{80.0}).value();
  EXPECT_DOUBLE_EQ(at60, sku_.leakage_at_ref.value());
  EXPECT_NEAR(at80 / at60, std::exp(sku_.leak_temp_coeff * 20.0), 1e-9);
}

TEST_F(PowerModelTest, WorseBinNeedsMorePower) {
  SiliconSample bad = chip_;
  bad.vf_offset = Volts{0.03};  // needs 30 mV more at every frequency
  PowerModel typical(sku_, chip_), worse(sku_, bad);
  EXPECT_GT(worse.dynamic_power(MegaHertz{1400.0}, 1.0),
            typical.dynamic_power(MegaHertz{1400.0}, 1.0));
  EXPECT_GT(worse.voltage(MegaHertz{1400.0}), typical.voltage(MegaHertz{1400.0}));
}

TEST_F(PowerModelTest, LeakyChipBurnsMoreStaticPower) {
  SiliconSample leaky = chip_;
  leaky.leakage_factor = 1.5;
  PowerModel pm(sku_, leaky);
  EXPECT_NEAR(pm.leakage_power(Celsius{60.0}).value(), 1.5 * sku_.leakage_at_ref.value(), 1e-9);
}

TEST_F(PowerModelTest, TotalIsSumOfParts) {
  PowerModel pm(sku_, chip_);
  const double t = 65.0;
  EXPECT_NEAR(pm.total_power(MegaHertz{1400.0}, 0.8, Celsius{t}).value(),
              (pm.dynamic_power(MegaHertz{1400.0}, 0.8) +
               pm.leakage_power(Celsius{t}) + sku_.idle_power)
                  .value(),
              1e-9);
}

TEST_F(PowerModelTest, IdleIsTotalAtZeroActivity) {
  PowerModel pm(sku_, chip_);
  EXPECT_NEAR(pm.idle_power(Celsius{50.0}).value(), pm.total_power(MegaHertz{1005.0}, 0.0, Celsius{50.0}).value(), 1e-9);
}

TEST_F(PowerModelTest, TypicalGemmPowerAboveTdpAtBoost) {
  // Calibration invariant: a typical V100 running a full-activity GEMM at
  // 1530 MHz must exceed 300 W, or the DVFS equilibrium would sit at the
  // boost clock and no frequency variability would exist.
  PowerModel pm(sku_, chip_);
  EXPECT_GT(pm.total_power(MegaHertz{1530.0}, 1.0, Celsius{60.0}), sku_.tdp + Watts{20.0});
  // ...while at ~1370 MHz it fits within the TDP (the settled band).
  EXPECT_LT(pm.total_power(MegaHertz{1365.0}, 1.0, Celsius{60.0}), sku_.tdp + Watts{2.0});
}

}  // namespace
}  // namespace gpuvar
