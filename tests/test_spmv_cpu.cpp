#include "hostbench/spmv_cpu.hpp"
#include "common/rng.hpp"
#include "hostbench/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gpuvar::host {
namespace {

TEST(Spmv, PlainSpmvSums) {
  // 0->1, 2->1: y[1] = x[0] + x[2].
  const auto g = csr_from_edges(3, {{0, 1}, {2, 1}});
  const std::vector<double> x{1.0, 10.0, 100.0};
  std::vector<double> y(3, -1.0);
  spmv(g, x, y, false);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 101.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(Spmv, PagerankSpmvDividesByOutDegree) {
  // 0 -> 1 and 0 -> 2: vertex 0 splits its rank in half.
  const auto g = csr_from_edges(3, {{0, 1}, {0, 2}});
  const std::vector<double> x{1.0, 0.0, 0.0};
  std::vector<double> y(3, 0.0);
  pagerank_spmv(g, x, y, false);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
  EXPECT_DOUBLE_EQ(y[2], 0.5);
}

TEST(Spmv, ParallelMatchesSerial) {
  Rng rng(1);
  const auto g = random_graph(20000, 6.0, rng);
  std::vector<double> x(g.n);
  for (std::size_t i = 0; i < g.n; ++i) x[i] = rng.uniform();
  std::vector<double> y_par(g.n), y_ser(g.n);
  pagerank_spmv(g, x, y_par, true);
  pagerank_spmv(g, x, y_ser, false);
  for (std::size_t i = 0; i < g.n; ++i) {
    EXPECT_DOUBLE_EQ(y_par[i], y_ser[i]);
  }
}

TEST(Spmv, MassIsConservedWithoutDanglers) {
  // With no dangling vertices, pagerank_spmv conserves total mass.
  Rng rng(2);
  auto edges = std::vector<std::pair<std::uint32_t, std::uint32_t>>{};
  const std::size_t n = 1000;
  for (std::uint32_t u = 0; u < n; ++u) {
    edges.emplace_back(u, (u + 1) % n);
    edges.emplace_back(u, (u + 7) % n);
  }
  const auto g = csr_from_edges(n, std::move(edges));
  std::vector<double> x(n, 1.0 / n), y(n);
  pagerank_spmv(g, x, y, false);
  double sum = 0.0;
  for (double v : y) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Spmv, SizeMismatchThrows) {
  const auto g = csr_from_edges(3, {{0, 1}});
  std::vector<double> x(2), y(3);
  EXPECT_THROW(spmv(g, x, y), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar::host
