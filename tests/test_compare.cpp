#include "core/compare.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gpuvar.hpp"

namespace gpuvar {
namespace {

std::vector<RunRecord> campaign(int gpus, int runs, double noise_ms,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RunRecord> records;
  for (int g = 0; g < gpus; ++g) {
    Rng grng(42, "base/gpu:" + std::to_string(g));  // bases shared across campaigns
    const double base = 2500.0 + grng.normal(0.0, 30.0);
    for (int run = 0; run < runs; ++run) {
      RunRecord r;
      r.gpu_index = g;
      r.loc.name = "gpu" + std::to_string(g);
      r.run_index = run;
      r.perf_ms = base + rng.normal(0.0, noise_ms);
      r.power_w = 298.0;
      r.temp_c = 60.0;
      r.freq_mhz = 1400.0;
      records.push_back(std::move(r));
    }
  }
  return records;
}

/// Test-local frame construction (the bulk row adapters are gone).
RecordFrame frame_from(const std::vector<RunRecord>& rows) {
  RecordFrame f;
  f.reserve(rows.size());
  for (const auto& r : rows) f.append_row(r);
  return f;
}

TEST(Compare, IdenticalCampaignsShowNoSignificantChange) {
  // Same per-GPU baselines, fresh run noise: nothing should clear the
  // significance bar.
  const auto before = campaign(60, 3, 4.0, 1);
  const auto after = campaign(60, 3, 4.0, 2);  // same bases (path-seeded)
  const auto cmp = compare_campaigns(frame_from(before), frame_from(after));
  EXPECT_EQ(cmp.matched_gpus, 60u);
  EXPECT_EQ(cmp.only_before, 0u);
  EXPECT_EQ(cmp.only_after, 0u);
  EXPECT_NEAR(cmp.median_delta_pct, 0.0, 0.25);
  EXPECT_TRUE(cmp.significant.empty());
  EXPECT_GT(cmp.noise_floor_pct, 0.0);
}

TEST(Compare, DetectsARepairedGpu) {
  const auto before_base = campaign(60, 3, 4.0, 1);
  auto before = before_base;
  for (auto& r : before) {
    if (r.loc.name == "gpu7") r.perf_ms += 300.0;  // broken before
  }
  const auto after = campaign(60, 3, 4.0, 2);  // fixed now
  const auto cmp = compare_campaigns(frame_from(before), frame_from(after));
  ASSERT_EQ(cmp.significant.size(), 1u);
  EXPECT_EQ(cmp.significant[0].name, "gpu7");
  EXPECT_LT(cmp.significant[0].delta_pct, -5.0);  // got faster
}

TEST(Compare, DetectsADegradedGpu) {
  const auto before = campaign(60, 3, 4.0, 1);
  auto after = campaign(60, 3, 4.0, 2);
  for (auto& r : after) {
    if (r.loc.name == "gpu3") r.perf_ms *= 1.06;
  }
  const auto cmp = compare_campaigns(frame_from(before), frame_from(after));
  ASSERT_GE(cmp.significant.size(), 1u);
  EXPECT_EQ(cmp.significant[0].name, "gpu3");
  EXPECT_GT(cmp.significant[0].delta_pct, 4.0);
}

TEST(Compare, CountsUnmatchedGpus) {
  auto before = campaign(10, 2, 2.0, 1);
  auto after = campaign(10, 2, 2.0, 2);
  // Rename two GPUs in `after` (replaced hardware).
  for (auto& r : after) {
    if (r.loc.name == "gpu0") r.loc.name = "gpu0-replacement";
  }
  const auto cmp = compare_campaigns(frame_from(before), frame_from(after));
  EXPECT_EQ(cmp.matched_gpus, 9u);
  EXPECT_EQ(cmp.only_before, 1u);
  EXPECT_EQ(cmp.only_after, 1u);
}

TEST(Compare, SortsSignificantBySeverity) {
  const auto before = campaign(40, 3, 2.0, 1);
  auto after = campaign(40, 3, 2.0, 2);
  for (auto& r : after) {
    if (r.loc.name == "gpu1") r.perf_ms *= 1.03;
    if (r.loc.name == "gpu2") r.perf_ms *= 1.10;
  }
  const auto cmp = compare_campaigns(frame_from(before), frame_from(after));
  ASSERT_GE(cmp.significant.size(), 2u);
  EXPECT_EQ(cmp.significant[0].name, "gpu2");
}

TEST(Compare, DisjointCampaignsThrow) {
  auto before = campaign(5, 2, 2.0, 1);
  auto after = campaign(5, 2, 2.0, 2);
  for (auto& r : after) r.loc.name += "-other";
  EXPECT_THROW(compare_campaigns(frame_from(before), frame_from(after)), std::invalid_argument);
}

TEST(Compare, EndToEndMaintenanceStory) {
  // The full §VII loop on the simulator: before = Longhorn with its bad
  // cabinet; after = the same cluster with the degraded boards fixed
  // (fault plan removed). The comparison must spotlight exactly the GPUs
  // whose condition changed.
  auto broken_spec = longhorn_spec();
  auto fixed_spec = longhorn_spec();
  fixed_spec.faults.rules.clear();
  Cluster broken(broken_spec);
  Cluster fixed(fixed_spec);

  auto cfg_b = default_config(broken, sgemm_workload(25536, 6), 2);
  cfg_b.node_coverage = 0.4;
  auto cfg_f = default_config(fixed, sgemm_workload(25536, 6), 2);
  cfg_f.node_coverage = 0.4;
  const auto before = run_experiment(broken, cfg_b);
  const auto after = run_experiment(fixed, cfg_f);

  const auto cmp = compare_campaigns(before.frame, after.frame);
  EXPECT_GT(cmp.matched_gpus, 100u);
  ASSERT_FALSE(cmp.significant.empty());
  // Every significant improvement corresponds to a previously-faulty GPU
  // (cooling faults shift temps more than runtime; power caps dominate).
  int confirmed = 0;
  for (const auto& d : cmp.significant) {
    if (d.delta_pct < 0.0) {
      for (std::size_t i = 0; i < broken.size(); ++i) {
        if (broken.gpu(i).loc.name == d.name &&
            broken.gpu(i).faults.any()) {
          ++confirmed;
          break;
        }
      }
    }
  }
  EXPECT_GT(confirmed, 0);
}

}  // namespace
}  // namespace gpuvar
