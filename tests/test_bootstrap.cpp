#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/quantile.hpp"

namespace gpuvar::stats {
namespace {

std::vector<double> normal_sample(int n, double mean, double sd,
                                  std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) xs.push_back(rng.normal(mean, sd));
  return xs;
}

TEST(Bootstrap, PointEstimateIsStatisticOfSample) {
  const auto xs = normal_sample(200, 100.0, 5.0);
  const auto ci = bootstrap_ci(xs, [](std::span<const double> v) {
    return mean(v);
  });
  EXPECT_DOUBLE_EQ(ci.point, mean(xs));
}

TEST(Bootstrap, IntervalContainsPointAndTruthUsually) {
  const auto xs = normal_sample(500, 100.0, 5.0);
  const auto ci = bootstrap_ci(
      xs, [](std::span<const double> v) { return mean(v); }, 1000, 0.95);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_TRUE(ci.contains(100.0));  // truth, with overwhelming probability
  // Mean CI width ~ 2*1.96*sd/sqrt(n) = 0.88.
  EXPECT_NEAR(ci.width(), 0.88, 0.25);
}

TEST(Bootstrap, Deterministic) {
  const auto xs = normal_sample(100, 0.0, 1.0);
  const auto a = bootstrap_ci(xs, variation_pct_statistic, 200, 0.9, 7);
  const auto b = bootstrap_ci(xs, variation_pct_statistic, 200, 0.9, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, WiderConfidenceWiderInterval) {
  const auto xs = normal_sample(300, 50.0, 3.0);
  const auto narrow = bootstrap_ci(
      xs, [](std::span<const double> v) { return median(v); }, 500, 0.80);
  const auto wide = bootstrap_ci(
      xs, [](std::span<const double> v) { return median(v); }, 500, 0.99);
  EXPECT_GE(wide.width(), narrow.width());
}

TEST(Bootstrap, MoreDataTighterInterval) {
  const auto small = normal_sample(50, 100.0, 5.0, 2);
  const auto large = normal_sample(5000, 100.0, 5.0, 3);
  auto stat = [](std::span<const double> v) { return mean(v); };
  EXPECT_GT(bootstrap_ci(small, stat).width(),
            bootstrap_ci(large, stat).width());
}

TEST(Bootstrap, VariationStatisticMatchesBoxDefinition) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  // whisker range 8, median 3 -> 266.7%.
  EXPECT_NEAR(variation_pct_statistic(xs), 8.0 / 3.0 * 100.0, 1e-9);
}

TEST(Bootstrap, VariationCiCoversTheEstimate) {
  const auto xs = normal_sample(400, 2500.0, 40.0, 5);
  const auto ci = bootstrap_ci(xs, variation_pct_statistic, 500, 0.95);
  // Gaussian variation ~ 5.4 * sd/mean = 8.6%.
  EXPECT_NEAR(ci.point, 8.6, 1.5);
  EXPECT_TRUE(ci.contains(ci.point));
  EXPECT_GT(ci.width(), 0.2);
}

TEST(Bootstrap, RejectsBadArguments) {
  const auto xs = normal_sample(10, 0.0, 1.0);
  auto stat = [](std::span<const double> v) { return mean(v); };
  EXPECT_THROW(bootstrap_ci(xs, stat, 10), std::invalid_argument);
  EXPECT_THROW(bootstrap_ci(xs, stat, 100, 1.5), std::invalid_argument);
  std::vector<double> tiny{1.0};
  EXPECT_THROW(bootstrap_ci(tiny, stat), std::invalid_argument);
  EXPECT_THROW(bootstrap_ci(xs, Statistic{}), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar::stats
