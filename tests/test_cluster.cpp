#include "cluster/cluster.hpp"

#include "workloads/runner.hpp"
#include "cluster/faults.hpp"
#include "common/units.hpp"
#include "gpu/device.hpp"
#include "gpu/sku.hpp"
#include "thermal/cooling.hpp"
#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <set>

namespace gpuvar {
namespace {

TEST(Cluster, LonghornMatchesTableOne) {
  Cluster c(longhorn_spec());
  EXPECT_EQ(c.size(), 416u);
  EXPECT_EQ(c.node_count(), 104);
  EXPECT_EQ(c.gpus_per_node(), 4);
  EXPECT_EQ(c.sku().name, "Tesla V100-SXM2-16GB");
  EXPECT_EQ(c.spec().cooling.type, CoolingType::kAir);
}

TEST(Cluster, VortexMatchesTableOne) {
  Cluster c(vortex_spec());
  EXPECT_EQ(c.size(), 216u);
  EXPECT_EQ(c.spec().cooling.type, CoolingType::kWater);
  EXPECT_TRUE(c.faulty_gpus().empty());  // Vortex measured clean
}

TEST(Cluster, CoronaMatchesTableOne) {
  Cluster c(corona_spec());
  EXPECT_EQ(c.size(), 328u);
  EXPECT_EQ(c.sku().vendor, Vendor::kAmd);
  EXPECT_EQ(c.spec().cooling.type, CoolingType::kAir);
  EXPECT_FALSE(c.faulty_gpus().empty());  // the c115 analogue
}

TEST(Cluster, FronteraMatchesTableOne) {
  Cluster c(frontera_spec());
  EXPECT_EQ(c.size(), 360u);
  EXPECT_EQ(c.sku().name, "Quadro RTX 5000");
  EXPECT_EQ(c.spec().cooling.type, CoolingType::kMineralOil);
}

TEST(Cluster, CloudlabMatchesTableOne) {
  Cluster c(cloudlab_spec());
  EXPECT_EQ(c.size(), 12u);
  EXPECT_EQ(c.node_count(), 3);
}

TEST(Cluster, SummitScalesByLayout) {
  Cluster small(summit_spec(1, 8, 29, 1, 6));
  EXPECT_EQ(small.size(), 8u * 29u * 6u);
  // Full Summit: 4608 nodes, 27648 GPUs (18 nodes/col needs cols*rows*18
  // = 4608 -> the default 8x29x18 gives 4176; the real machine's extra
  // columns are irregular, so we check the spec exposes the knobs).
  const auto full = summit_spec(1, 8, 32, 18, 6);
  EXPECT_EQ(full.layout.nodes * full.layout.gpus_per_node, 27648);
}

TEST(Cluster, IndexOfRoundTrips) {
  Cluster c(vortex_spec());
  for (int node = 0; node < c.node_count(); node += 7) {
    for (int g = 0; g < c.gpus_per_node(); ++g) {
      const auto idx = c.index_of(node, g);
      EXPECT_EQ(c.gpu(idx).loc.node, node);
      EXPECT_EQ(c.gpu(idx).loc.gpu, g);
    }
  }
}

TEST(Cluster, NodeGpusAreContiguous) {
  Cluster c(longhorn_spec());
  const auto gpus = c.node_gpus(10);
  ASSERT_EQ(gpus.size(), 4u);
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    EXPECT_EQ(gpus[i], c.index_of(10, static_cast<int>(i)));
  }
}

TEST(Cluster, ConstructionIsDeterministic) {
  Cluster a(longhorn_spec()), b(longhorn_spec());
  for (std::size_t i = 0; i < a.size(); i += 13) {
    EXPECT_DOUBLE_EQ(a.gpu(i).silicon.vf_offset.value(), b.gpu(i).silicon.vf_offset.value());
    EXPECT_DOUBLE_EQ(a.gpu(i).thermal.coolant.value(), b.gpu(i).thermal.coolant.value());
    EXPECT_DOUBLE_EQ(a.gpu(i).power_cap.value(), b.gpu(i).power_cap.value());
  }
}

TEST(Cluster, DifferentSeedsDifferentPopulation) {
  Cluster a(longhorn_spec(1)), b(longhorn_spec(2));
  int diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.gpu(i).silicon.vf_offset != b.gpu(i).silicon.vf_offset) ++diffs;
  }
  EXPECT_EQ(diffs, static_cast<int>(a.size()));
}

TEST(Cluster, SiliconVariesAcrossGpus) {
  Cluster c(vortex_spec());
  std::set<double> offsets;
  for (std::size_t i = 0; i < c.size(); ++i) {
    offsets.insert(c.gpu(i).silicon.vf_offset.value());
  }
  EXPECT_GT(offsets.size(), c.size() / 2);
}

TEST(Cluster, CabinetSharesThermalOffset) {
  // GPUs in the same air-cooled cabinet should have correlated coolant
  // temperatures (shared hot-aisle offset) vs cross-cabinet pairs.
  Cluster c(longhorn_spec());
  double same_cab = 0.0, diff_cab = 0.0;
  int n_same = 0, n_diff = 0;
  for (std::size_t i = 0; i + 1 < c.size(); i += 2) {
    const auto& a = c.gpu(i);
    const auto& b = c.gpu(i + 1);
    const double d = abs(a.thermal.coolant - b.thermal.coolant).value();
    if (a.loc.cabinet == b.loc.cabinet) {
      same_cab += d;
      ++n_same;
    } else {
      diff_cab += d;
      ++n_diff;
    }
  }
  ASSERT_GT(n_same, 0);
  // same-cabinet pairs differ only by the per-GPU sigma.
  EXPECT_LT(same_cab / n_same, 12.0);
}

TEST(Cluster, DegradedBoardFaultDegradesMemoryBandwidth) {
  Cluster c(longhorn_spec());
  bool found = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c.gpu(i).faults.has(FaultKind::kDegradedBoard)) {
      EXPECT_LT(c.gpu(i).silicon.mem_bw_factor, 0.5);
      EXPECT_GT(c.gpu(i).power_cap, Watts{});
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cluster, MakeDeviceAppliesCapAndOverride) {
  Cluster c(longhorn_spec());
  const auto faulty = c.faulty_gpus();
  std::size_t capped = c.size();
  for (std::size_t i : faulty) {
    if (c.gpu(i).power_cap > Watts{}) {
      capped = i;
      break;
    }
  }
  ASSERT_NE(capped, c.size());
  auto dev = c.make_device(capped);
  EXPECT_DOUBLE_EQ(dev->power_limit().value(), c.gpu(capped).power_cap.value());
  // Override below the cap wins; above the cap the cap wins.
  auto dev_low = c.make_device(capped, SimOptions{}, Watts{100.0});
  EXPECT_DOUBLE_EQ(dev_low->power_limit().value(), 100.0);
  auto dev_high = c.make_device(capped, SimOptions{}, Watts{1000.0});
  EXPECT_DOUBLE_EQ(dev_high->power_limit().value(), c.gpu(capped).power_cap.value());
}

TEST(Cluster, SummitFaultsConcentratedInConfiguredRows) {
  Cluster c(summit_spec(0x5077, 8, 29, 2, 6));
  int in_target_rows = 0, elsewhere = 0;
  for (std::size_t i : c.faulty_gpus()) {
    const auto& g = c.gpu(i);
    if (!g.faults.has(FaultKind::kPowerCap)) continue;
    if (g.loc.row == 7 || g.loc.row == 0) {
      ++in_target_rows;
    } else {
      ++elsewhere;
    }
  }
  EXPECT_GT(in_target_rows, 0);
  EXPECT_EQ(elsewhere, 0);
}

TEST(Cluster, GpuSeedPathUnique) {
  Cluster c(cloudlab_spec());
  std::set<std::string> paths;
  for (std::size_t i = 0; i < c.size(); ++i) paths.insert(c.gpu_seed_path(i));
  EXPECT_EQ(paths.size(), c.size());
}

TEST(Cluster, InterconnectFactorIsANodeProperty) {
  Cluster c(longhorn_spec());
  bool any_spread = false;
  for (int node = 0; node < c.node_count(); ++node) {
    const auto gpus = c.node_gpus(node);
    const double f0 = c.gpu(gpus[0]).interconnect_factor;
    EXPECT_GT(f0, 0.8);
    EXPECT_LT(f0, 1.3);
    for (std::size_t g = 1; g < gpus.size(); ++g) {
      EXPECT_DOUBLE_EQ(c.gpu(gpus[g]).interconnect_factor, f0);
    }
    if (std::abs(f0 - 1.0) > 0.01) any_spread = true;
  }
  EXPECT_TRUE(any_spread);
}

TEST(Cluster, DegradedInterconnectFaultSlowsAllreduce) {
  auto spec = cloudlab_spec();
  FaultRule link;
  link.kind = FaultKind::kDegradedInterconnect;
  link.nodes = {0};
  link.probability = 1.0;
  link.interconnect_multiplier = 5.0;
  spec.faults.rules.push_back(link);
  Cluster c(std::move(spec));
  EXPECT_GE(c.gpu(c.index_of(0, 0)).interconnect_factor, 4.0);
  EXPECT_LT(c.gpu(c.index_of(1, 0)).interconnect_factor, 1.5);

  // The slow link inflates the bulk-synchronous iteration time.
  const auto w = resnet50_multi_workload(5);
  const auto opts = RunOptions::for_sku(c.sku());
  const auto slow = run_on_node(c, 0, w, 0, opts);
  const auto fast = run_on_node(c, 1, w, 0, opts);
  // ~8 ms allreduce * (5 - 1) = ~32 ms extra per ~130 ms iteration.
  EXPECT_GT(slow[0].perf_ms, fast[0].perf_ms + 15.0);
}

TEST(Cluster, OutOfRangeThrows) {
  Cluster c(cloudlab_spec());
  EXPECT_THROW(c.gpu(12), std::invalid_argument);
  EXPECT_THROW(c.index_of(3, 0), std::invalid_argument);
  EXPECT_THROW(c.index_of(0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
