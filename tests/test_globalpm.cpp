#include "core/globalpm.hpp"

#include <gtest/gtest.h>

#include "core/variability.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "gpu/device.hpp"
#include "gpu/kernel.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {
namespace {

class GlobalPmTest : public ::testing::Test {
 protected:
  Cluster cluster_{vortex_spec()};  // fault-free: isolates the policy
  KernelSpec kernel_ = make_sgemm_kernel(25536);
};

TEST_F(GlobalPmTest, UniformSplitsEnvelope) {
  const auto a = uniform_assignment(cluster_, Watts{216.0 * 250.0});
  ASSERT_EQ(a.limits.size(), cluster_.size());
  for (Watts w : a.limits) EXPECT_DOUBLE_EQ(w.value(), 250.0);
  EXPECT_NEAR(a.total().value(), 216.0 * 250.0, 1e-6);
}

TEST_F(GlobalPmTest, UniformCapsAtTdp) {
  const auto a = uniform_assignment(cluster_, Watts{1e9});
  for (Watts w : a.limits) EXPECT_DOUBLE_EQ(w.value(), cluster_.sku().tdp.value());
}

TEST_F(GlobalPmTest, PredictedPowerMatchesSimulatedSteadyState) {
  const MegaHertz f{1200.0};
  for (std::size_t gi : {std::size_t{0}, std::size_t{77}}) {
    const Watts predicted =
        predicted_steady_power(cluster_, gi, kernel_, f);
    // Simulate the same GPU pinned by a cap exactly at the prediction:
    // it should settle at (or within a step of) the target frequency.
    SimOptions opts;
    opts.tick = cluster_.sku().dvfs_control_period;
    auto dev = cluster_.make_device(gi, opts, predicted + Watts{0.5});
    dev->run_kernel(kernel_, nullptr);
    dev->run_kernel(kernel_, nullptr);
    EXPECT_NEAR(dev->frequency().value(), f.value(),
                3.0 * cluster_.sku().ladder_step_mhz.value())
        << "gpu " << gi;
  }
}

TEST_F(GlobalPmTest, WorseBinsPredictMorePower) {
  // At a fixed frequency a worse chip must be predicted to draw more.
  std::size_t best = 0, worst = 0;
  double best_q = -1.0, worst_q = 2.0;
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    const double q = cluster_.gpu(i).silicon.quality_score(cluster_.sku());
    if (q > best_q) {
      best_q = q;
      best = i;
    }
    if (q < worst_q) {
      worst_q = q;
      worst = i;
    }
  }
  EXPECT_GT(predicted_steady_power(cluster_, worst, kernel_, MegaHertz{1300.0}),
            predicted_steady_power(cluster_, best, kernel_, MegaHertz{1300.0}));
}

TEST_F(GlobalPmTest, EqualFrequencyFitsTheEnvelope) {
  const Watts envelope{270.0 * static_cast<double>(cluster_.size())};
  const auto a = equal_frequency_assignment(cluster_, envelope, kernel_);
  ASSERT_EQ(a.limits.size(), cluster_.size());
  EXPECT_GT(a.target_freq, MegaHertz{1000.0});
  EXPECT_LE(a.total(), envelope + Watts{1e-6});
  // Worse bins get more power budget than better bins.
  double rho_check = 0.0;
  int n = 0;
  for (std::size_t i = 0; i + 1 < cluster_.size(); i += 2) {
    const double qa = cluster_.gpu(i).silicon.quality_score(cluster_.sku());
    const double qb =
        cluster_.gpu(i + 1).silicon.quality_score(cluster_.sku());
    if (qa == qb) continue;
    const bool worse_gets_more =
        (qa < qb) == (a.limits[i] > a.limits[i + 1]);
    rho_check += worse_gets_more ? 1.0 : 0.0;
    ++n;
  }
  EXPECT_GT(rho_check / n, 0.8);
}

TEST_F(GlobalPmTest, CoordinationReducesVariabilityAtSameEnvelope) {
  // The headline result: equal-frequency assignment under the same total
  // power dramatically narrows the performance spread.
  const Watts envelope{275.0 * static_cast<double>(cluster_.size())};
  const auto workload = sgemm_workload(25536, 6);

  const auto uniform = analyze_variability(
      run_under_assignment(cluster_, workload,
                           uniform_assignment(cluster_, envelope))
          .frame);
  const auto coordinated = analyze_variability(
      run_under_assignment(
          cluster_, workload,
          equal_frequency_assignment(cluster_, envelope, kernel_))
          .frame);

  EXPECT_LT(coordinated.perf.variation_pct,
            0.6 * uniform.perf.variation_pct);
  EXPECT_LT(coordinated.freq.variation_pct,
            0.6 * uniform.freq.variation_pct);
}

TEST_F(GlobalPmTest, TinyEnvelopeFallsBackToUniform) {
  const auto a = equal_frequency_assignment(cluster_, Watts{10.0}, kernel_);
  EXPECT_DOUBLE_EQ(a.target_freq.value(), 0.0);  // uniform fallback
  EXPECT_EQ(a.limits.size(), cluster_.size());
}

TEST_F(GlobalPmTest, RunUnderAssignmentValidates) {
  const auto a = uniform_assignment(cluster_, Watts{270.0 * static_cast<double>(cluster_.size())});
  EXPECT_THROW(
      run_under_assignment(cluster_, resnet50_multi_workload(3), a),
      std::invalid_argument);
  PowerAssignment wrong;
  wrong.limits.assign(3, Watts{200.0});
  EXPECT_THROW(run_under_assignment(cluster_, sgemm_workload(25536, 2), wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
