#include "thermal/cooling.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace gpuvar {
namespace {

std::vector<double> sample_coolants(const CoolingSpec& spec, int n_cabinets,
                                    int gpus_per_cabinet) {
  std::vector<double> out;
  for (int c = 0; c < n_cabinets; ++c) {
    Rng crng(1, "cab:" + std::to_string(c));
    const Celsius off = sample_cabinet_offset(spec, crng);
    for (int g = 0; g < gpus_per_cabinet; ++g) {
      Rng grng(1, "cab:" + std::to_string(c) + "/g:" + std::to_string(g));
      out.push_back(sample_thermal(spec, off, grng).coolant.value());
    }
  }
  return out;
}

TEST(Cooling, AirHasWidestSpread) {
  const auto air = sample_coolants(air_cooling(), 30, 12);
  const auto water = sample_coolants(water_cooling(), 30, 12);
  const auto oil = sample_coolants(mineral_oil_cooling(), 30, 12);
  const double sd_air = stats::describe(air).stddev;
  const double sd_water = stats::describe(water).stddev;
  const double sd_oil = stats::describe(oil).stddev;
  EXPECT_GT(sd_air, 2.5 * sd_water);
  EXPECT_GT(sd_water, sd_oil);
}

TEST(Cooling, OilBathRunsWarmButUniform) {
  // Frontera: high median temperature, tiny spread (Q3-Q1 ~ 4 C).
  const auto oil = mineral_oil_cooling();
  const auto water = water_cooling();
  EXPECT_GT(oil.coolant_base, water.coolant_base + Celsius{15.0});
  EXPECT_LT(oil.cabinet_sigma, Celsius{1.5});
}

TEST(Cooling, WaterRemovesHeatBest) {
  EXPECT_LT(water_cooling().r_mean, air_cooling().r_mean);
  EXPECT_LT(water_cooling().r_mean, mineral_oil_cooling().r_mean);
}

TEST(Cooling, SampledParamsArePhysical) {
  for (const auto& spec :
       {air_cooling(), water_cooling(), mineral_oil_cooling()}) {
    for (int i = 0; i < 500; ++i) {
      Rng rng(2, "s:" + std::to_string(i));
      const auto p = sample_thermal(spec, Celsius{0.0}, rng);
      EXPECT_GT(p.r_c_per_w, 0.0);
      EXPECT_GT(p.c_j_per_c, 0.0);
      EXPECT_GE(p.coolant, Celsius{10.0});
    }
  }
}

TEST(Cooling, AirCabinetOffsetsSkewWarm) {
  // Hot aisles: the warm tail is longer than the cold tail.
  const auto spec = air_cooling();
  double warm_sum = 0.0, cold_sum = 0.0;
  int warm = 0, cold = 0;
  for (int i = 0; i < 20000; ++i) {
    Rng rng(3, "c:" + std::to_string(i));
    const double off = sample_cabinet_offset(spec, rng).value();
    if (off > 0) {
      warm_sum += off;
      ++warm;
    } else {
      cold_sum -= off;
      ++cold;
    }
  }
  EXPECT_GT(warm_sum / warm, 1.3 * (cold_sum / cold));
}

TEST(Cooling, ZeroSigmaMeansNoCabinetSpread) {
  auto spec = water_cooling();
  spec.cabinet_sigma = Celsius{0.0};
  Rng rng(4, "x");
  EXPECT_DOUBLE_EQ(sample_cabinet_offset(spec, rng).value(), 0.0);
}

TEST(Cooling, TypeNames) {
  EXPECT_EQ(to_string(CoolingType::kAir), "air");
  EXPECT_EQ(to_string(CoolingType::kWater), "water");
  EXPECT_EQ(to_string(CoolingType::kMineralOil), "mineral oil");
}

}  // namespace
}  // namespace gpuvar
