#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "telemetry/frame.hpp"
#include "cluster/faults.hpp"
#include "core/correlate.hpp"
#include "core/flagging.hpp"
#include "core/variability.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {
namespace {

RecordFrame sample_records() {
  Rng rng(1);
  RecordFrame rs;
  for (int i = 0; i < 60; ++i) {
    RunRecord r;
    r.gpu_index = i;
    r.loc.cabinet = i / 20;
    r.loc.row = i / 30;
    r.loc.node = i / 4;
    r.loc.name = "gpu" + std::to_string(i);
    r.day_of_week = i % 7;
    r.freq_mhz = 1350.0 + rng.normal(0.0, 20.0);
    r.perf_ms = 2500.0 * 1365.0 / r.freq_mhz;
    r.power_w = 298.0 + rng.normal(0.0, 1.0);
    r.temp_c = rng.uniform(40.0, 80.0);
    rs.append_row(r);
  }
  return rs;
}

TEST(Report, SectionBanner) {
  std::ostringstream out;
  print_section(out, "hello");
  EXPECT_EQ(out.str(), "\n==== hello ====\n");
}

TEST(Report, VariabilityTableShowsAllMetrics) {
  std::ostringstream out;
  print_variability_table(out, analyze_variability(sample_records()));
  const std::string text = out.str();
  for (const char* needle :
       {"perf", "frequency", "power", "temperature", "variation",
        "records: 60 across 60 GPUs", "median"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, CorrelationTableShowsAllPairs) {
  std::ostringstream out;
  print_correlation_table(out, correlate_metrics(sample_records()));
  const std::string text = out.str();
  EXPECT_NE(text.find("rho(performance"), std::string::npos);
  EXPECT_NE(text.find("rho(power"), std::string::npos);
  EXPECT_NE(text.find("spearman"), std::string::npos);
  // perf-freq is strong by construction.
  EXPECT_NE(text.find("strong"), std::string::npos);
}

TEST(Report, GroupBoxesOneRowPerGroup) {
  std::ostringstream out;
  print_group_boxes(out, sample_records(), Metric::kPerf, GroupBy::kCabinet);
  const std::string text = out.str();
  EXPECT_NE(text.find("c000"), std::string::npos);
  EXPECT_NE(text.find("c001"), std::string::npos);
  EXPECT_NE(text.find("c002"), std::string::npos);
  EXPECT_NE(text.find("performance by group"), std::string::npos);
}

TEST(Report, ScatterShowsLabelsAndRho) {
  std::ostringstream out;
  print_scatter(out, sample_records(), Metric::kFreq, Metric::kPerf);
  const std::string text = out.str();
  EXPECT_NE(text.find("frequency (MHz)"), std::string::npos);
  EXPECT_NE(text.find("performance (ms)"), std::string::npos);
  EXPECT_NE(text.find("rho"), std::string::npos);
}

TEST(Report, FlagsEmptyReport) {
  std::ostringstream out;
  print_flags(out, FlagReport{});
  EXPECT_NE(out.str().find("no anomalies"), std::string::npos);
}

TEST(Report, FlagsTruncatesLongLists) {
  FlagReport report;
  for (int i = 0; i < 20; ++i) {
    GpuFlag f;
    f.gpu_index = i;
    f.name = "gpu" + std::to_string(i);
    f.reasons = {FlagReason::kSlowOutlier};
    f.severity = 20.0 - i;
    report.gpus.push_back(std::move(f));
  }
  CabinetFlag cf;
  cf.cabinet = 7;
  cf.note = "check pump";
  report.cabinets.push_back(cf);

  std::ostringstream out;
  print_flags(out, report, 5);
  const std::string text = out.str();
  EXPECT_NE(text.find("gpu0"), std::string::npos);
  EXPECT_NE(text.find("... and 15 more"), std::string::npos);
  EXPECT_EQ(text.find("gpu9"), std::string::npos);
  EXPECT_NE(text.find("[cabinet 7] check pump"), std::string::npos);
}

TEST(Report, MetricNamesAndUnits) {
  EXPECT_EQ(metric_name(Metric::kPerf), "performance");
  EXPECT_EQ(metric_unit(Metric::kPerf), "ms");
  EXPECT_EQ(metric_unit(Metric::kFreq), "MHz");
  EXPECT_EQ(metric_unit(Metric::kPower), "W");
  EXPECT_EQ(metric_unit(Metric::kTemp), "C");
}

}  // namespace
}  // namespace gpuvar
