#include "gpu/dvfs.hpp"
#include "common/units.hpp"
#include "gpu/sku.hpp"

#include <gtest/gtest.h>

namespace gpuvar {
namespace {

class DvfsTest : public ::testing::Test {
 protected:
  GpuSku sku_ = make_v100_sxm2();
};

TEST_F(DvfsTest, StartsAtBoost) {
  DvfsController c(sku_);
  EXPECT_DOUBLE_EQ(c.frequency().value(), sku_.max_mhz.value());
  EXPECT_DOUBLE_EQ(c.power_limit().value(), sku_.tdp.value());
}

TEST_F(DvfsTest, StepsDownWhenOverLimit) {
  DvfsController c(sku_);
  const double f0 = c.frequency().value();
  EXPECT_TRUE(c.observe(Seconds{0.0}, sku_.tdp + Watts{20.0}, Celsius{50.0}));
  EXPECT_LT(c.frequency().value(), f0);
}

TEST_F(DvfsTest, ActsAtMostOncePerControlPeriod) {
  DvfsController c(sku_);
  EXPECT_TRUE(c.observe(Seconds{0.0}, Watts{400.0}, Celsius{50.0}));
  // Immediately after: inside the same control period, no action.
  EXPECT_FALSE(c.observe(Seconds{0.001}, Watts{400.0}, Celsius{50.0}));
  // After the period elapses, it acts again.
  EXPECT_TRUE(c.observe(sku_.dvfs_control_period + Seconds{1e-6}, Watts{400.0},
                        Celsius{50.0}));
}

TEST_F(DvfsTest, WalksDownOneStepAtATime) {
  DvfsController c(sku_);
  double t = 0.0;
  const double f0 = c.frequency().value();
  c.observe(Seconds{t}, Watts{400.0}, Celsius{50.0});
  EXPECT_NEAR(f0 - c.frequency().value(), sku_.ladder_step_mhz.value(), 1e-9);
}

TEST_F(DvfsTest, NeverLeavesTheLadder) {
  DvfsController c(sku_);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    c.observe(Seconds{t}, Watts{500.0}, Celsius{50.0});
    t += sku_.dvfs_control_period.value();
    EXPECT_GE(c.frequency(), sku_.min_mhz);
  }
  EXPECT_DOUBLE_EQ(c.frequency().value(), sku_.min_mhz.value());  // pinned at the floor
}

TEST_F(DvfsTest, StepsUpWithHeadroomAfterHold) {
  DvfsController c(sku_);
  double t = 0.0;
  // Drive down a few states.
  for (int i = 0; i < 5; ++i) {
    c.observe(Seconds{t}, Watts{400.0}, Celsius{50.0});
    t += sku_.dvfs_control_period.value();
  }
  const double f_low = c.frequency().value();
  // Give generous headroom; after the hysteresis hold it climbs back.
  for (int i = 0; i < 20; ++i) {
    c.observe(Seconds{t}, Watts{100.0}, Celsius{50.0});
    t += sku_.dvfs_control_period.value();
  }
  EXPECT_GT(c.frequency().value(), f_low);
}

TEST_F(DvfsTest, NoStepUpInsideMargin) {
  DvfsController c(sku_);
  double t = 0.0;
  for (int i = 0; i < 3; ++i) {
    c.observe(Seconds{t}, Watts{400.0}, Celsius{50.0});
    t += sku_.dvfs_control_period.value();
  }
  const double f = c.frequency().value();
  // Power just inside the band [limit - margin, limit]: stay put.
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(
        c.observe(Seconds{t}, sku_.tdp - sku_.dvfs_up_margin / 2.0, Celsius{50.0}));
    t += sku_.dvfs_control_period.value();
  }
  EXPECT_DOUBLE_EQ(c.frequency().value(), f);
}

TEST_F(DvfsTest, ThermalSlowdownForcesDownsteps) {
  DvfsController c(sku_);
  double t = 0.0;
  // Low power but at the slowdown temperature: still throttles.
  c.observe(Seconds{t}, Watts{100.0}, sku_.slowdown_temp + Celsius{1.0});
  EXPECT_TRUE(c.thermally_throttled());
  EXPECT_LT(c.frequency(), sku_.max_mhz);
}

TEST_F(DvfsTest, NoClimbNearSlowdownTemperature) {
  DvfsController c(sku_);
  double t = 0.0;
  for (int i = 0; i < 5; ++i) {
    c.observe(Seconds{t}, Watts{400.0}, Celsius{50.0});
    t += sku_.dvfs_control_period.value();
  }
  const double f = c.frequency().value();
  for (int i = 0; i < 50; ++i) {
    c.observe(Seconds{t}, Watts{100.0}, sku_.slowdown_temp - Celsius{1.0});
    t += sku_.dvfs_control_period.value();
  }
  EXPECT_LE(c.frequency().value(), f + 1e-9);
}

TEST_F(DvfsTest, CustomPowerLimitRespected) {
  DvfsController c(sku_, Watts{150.0});
  EXPECT_DOUBLE_EQ(c.power_limit().value(), 150.0);
  EXPECT_TRUE(c.observe(Seconds{0.0}, Watts{160.0}, Celsius{40.0}));
}

TEST_F(DvfsTest, ResetReturnsToBoost) {
  DvfsController c(sku_);
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    c.observe(Seconds{t}, Watts{400.0}, Celsius{50.0});
    t += sku_.dvfs_control_period.value();
  }
  c.reset();
  EXPECT_DOUBLE_EQ(c.frequency().value(), sku_.max_mhz.value());
}

TEST_F(DvfsTest, AmdControllerUsesWiderMargin) {
  const auto mi60 = make_mi60();
  EXPECT_GT(mi60.dvfs_up_margin, sku_.dvfs_up_margin);
}

}  // namespace
}  // namespace gpuvar
