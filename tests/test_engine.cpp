// Campaign engine: checkpoint/resume, bounded-memory spilling, and the
// contract that every artifact byte is independent of pool size, spill
// threshold, and interruption history.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "core/experiment.hpp"
#include "core/markdown_report.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "telemetry/export.hpp"
#include "telemetry/shard.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test checkpoint directory under gtest's temp root.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "gpuvar_engine" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct Artifacts {
  std::string csv;
  std::string markdown;
  std::string summary;
};

/// Renders every downstream artifact the acceptance contract compares:
/// the frame CSV, the markdown report, and the campaign summary.
Artifacts render(const Cluster& cluster, const CampaignResult& result) {
  Artifacts a;
  std::ostringstream csv;
  export_frame_csv(csv, cluster.name(), result.frame);
  a.csv = csv.str();
  MarkdownReportOptions md_opts;
  md_opts.bootstrap_resamples = 50;
  std::ostringstream md;
  write_markdown_report(md, result.frame, md_opts);
  a.markdown = md.str();
  std::ostringstream sum;
  write_campaign_summary(sum, result);
  a.summary = sum.str();
  return a;
}

class EngineTest : public ::testing::Test {
 protected:
  ExperimentConfig config(int runs = 2) const {
    return default_config(cluster_, sgemm_workload(16384, 2), runs);
  }
  Cluster cluster_{cloudlab_spec()};
};

TEST_F(EngineTest, MatchesRunExperimentByteForByte) {
  const auto cfg = config();
  const ExperimentResult baseline = run_experiment(cluster_, cfg);
  const CampaignResult engine = run_campaign(cluster_, cfg);
  EXPECT_EQ(engine.gpus_measured, baseline.gpus_measured);
  EXPECT_EQ(engine.nodes_measured, baseline.nodes_measured);
  EXPECT_EQ(serialize_frame_shard(engine.frame, 0),
            serialize_frame_shard(baseline.frame, 0))
      << "the engine's merged frame differs from the single-pass result";
  EXPECT_EQ(engine.stats.buckets_total, 3u);
  EXPECT_EQ(engine.stats.buckets_run, 3u);
  EXPECT_EQ(engine.stats.buckets_spilled, 0u);
}

TEST_F(EngineTest, ByteIdenticalAtAnyPoolSizeAndSpillThreshold) {
  // Reference: single-threaded, purely in-memory.
  const CampaignResult ref = run_campaign(cluster_, config());
  const Artifacts want = render(cluster_, ref);
  ASSERT_GT(ref.stats.bucket_bytes_max, 0u);

  // Budget 0 spills every bucket; one-bucket budget spills under
  // contention; unlimited never spills. All must emit the same bytes.
  const std::vector<std::uint64_t> budgets = {
      0, ref.stats.bucket_bytes_max, kUnlimitedShardBudget};
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(threads);
    for (std::uint64_t budget : budgets) {
      auto cfg = config();
      cfg.pool = &pool;
      CampaignOptions opts;
      opts.shard_budget_bytes = budget;
      if (budget != kUnlimitedShardBudget) {
        opts.checkpoint_dir = fresh_dir("matrix").string();
      }
      const CampaignResult got = run_campaign(cluster_, cfg, opts);
      const Artifacts a = render(cluster_, got);
      const std::string label = "threads=" + std::to_string(threads) +
                                " budget=" + std::to_string(budget);
      EXPECT_EQ(a.csv, want.csv) << label << ": frame CSV diverged";
      EXPECT_EQ(a.markdown, want.markdown) << label << ": report diverged";
      EXPECT_EQ(a.summary, want.summary) << label << ": summary diverged";
      if (budget == 0) {
        EXPECT_EQ(got.stats.buckets_spilled, 3u) << label;
      }
    }
  }
}

TEST_F(EngineTest, InterruptedThenResumedIsByteIdentical) {
  const Artifacts want = render(cluster_, run_campaign(cluster_, config()));

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const fs::path dir =
        fresh_dir("interrupt-" + std::to_string(threads));

    // First attempt dies from inside the progress callback after the
    // first bucket completes. The shard and its manifest line are
    // already durable at that point (durability precedes progress), so
    // the kill can cost at most the in-flight buckets.
    auto cfg = config();
    cfg.pool = &pool;
    cfg.progress = [](std::size_t done, std::size_t) {
      if (done == 1) throw std::runtime_error("simulated kill");
    };
    CampaignOptions opts;
    opts.checkpoint_dir = dir.string();
    EXPECT_THROW(run_campaign(cluster_, cfg, opts), std::runtime_error);
    EXPECT_TRUE(fs::exists(dir / "IN_PROGRESS"))
        << "a killed campaign must leave its in-progress marker behind";

    // Resume: only the missing buckets re-run, progress is monotone
    // 1..total across restored + fresh buckets, and every artifact byte
    // matches the uninterrupted reference.
    std::vector<std::pair<std::size_t, std::size_t>> seen;
    cfg.progress = [&](std::size_t done, std::size_t total) {
      seen.emplace_back(done, total);
    };
    const CampaignResult resumed = run_campaign(cluster_, cfg, opts);
    EXPECT_GE(resumed.stats.buckets_restored, 1u);
    EXPECT_EQ(resumed.stats.buckets_restored + resumed.stats.buckets_run, 3u);
    ASSERT_EQ(seen.size(), 3u);
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].first, i + 1);
      EXPECT_EQ(seen[i].second, 3u);
    }
    EXPECT_FALSE(fs::exists(dir / "IN_PROGRESS"))
        << "a completed campaign must clear the marker";

    const Artifacts a = render(cluster_, resumed);
    EXPECT_EQ(a.csv, want.csv)
        << threads << " threads: resumed CSV differs from uninterrupted";
    EXPECT_EQ(a.markdown, want.markdown)
        << threads << " threads: resumed report differs from uninterrupted";
    EXPECT_EQ(a.summary, want.summary)
        << threads << " threads: resumed summary differs from uninterrupted";
  }
}

TEST_F(EngineTest, StaleShardHashForcesRerunOfThatBucket) {
  const fs::path dir = fresh_dir("stale");
  CampaignOptions opts;
  opts.checkpoint_dir = dir.string();
  const auto cfg = config();
  const CampaignResult first = run_campaign(cluster_, cfg, opts);
  const Artifacts want = render(cluster_, first);

  // Corrupt one shard behind the manifest's back: flip a payload byte.
  const fs::path victim = dir / "bucket-000001.shard";
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(-1, std::ios::end);
    char c = 0;
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x01));
  }

  const CampaignResult second = run_campaign(cluster_, cfg, opts);
  EXPECT_EQ(second.stats.buckets_rerun_stale, 1u)
      << "the corrupt shard must be demoted to re-run";
  EXPECT_EQ(second.stats.buckets_restored, 2u);
  EXPECT_EQ(second.stats.buckets_run, 1u);
  const Artifacts a = render(cluster_, second);
  EXPECT_EQ(a.csv, want.csv);
  EXPECT_EQ(a.summary, want.summary);
}

TEST_F(EngineTest, TornManifestTailIsSkippedOnResume) {
  const fs::path dir = fresh_dir("torn");
  CampaignOptions opts;
  opts.checkpoint_dir = dir.string();
  const Artifacts want = render(cluster_, run_campaign(cluster_, config(), opts));

  // Simulate an append that died mid-line: the durable prefix counts,
  // the torn tail is ignored.
  {
    std::ofstream f(dir / "manifest.txt", std::ios::app);
    f << "bucket 2 rows 4 payl";
  }
  const CampaignResult resumed = run_campaign(cluster_, config(), opts);
  EXPECT_EQ(resumed.stats.buckets_restored, 3u);
  EXPECT_EQ(render(cluster_, resumed).csv, want.csv);
}

TEST_F(EngineTest, CheckpointOfDifferentCampaignIsRefused) {
  const fs::path dir = fresh_dir("mismatch");
  CampaignOptions opts;
  opts.checkpoint_dir = dir.string();
  run_campaign(cluster_, config(/*runs=*/1), opts);
  try {
    run_campaign(cluster_, config(/*runs=*/2), opts);
    FAIL() << "resumed under a different config";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different campaign"),
              std::string::npos);
  }

  // Same name, different reps: the workload spec (not just its name)
  // is part of the checkpoint identity.
  auto reps_cfg = config(/*runs=*/1);
  reps_cfg.workload = sgemm_workload(16384, 3);
  try {
    run_campaign(cluster_, reps_cfg, opts);
    FAIL() << "resumed under a different workload spec";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different campaign"),
              std::string::npos);
  }
}

TEST_F(EngineTest, ForeignManifestFileIsRefused) {
  const fs::path dir = fresh_dir("foreign");
  {
    std::ofstream f(dir / "manifest.txt");
    f << "someone else's file\n";
  }
  CampaignOptions opts;
  opts.checkpoint_dir = dir.string();
  EXPECT_THROW(run_campaign(cluster_, config(), opts), std::runtime_error);
}

TEST_F(EngineTest, BoundedBudgetRequiresCheckpointDir) {
  CampaignOptions opts;
  opts.shard_budget_bytes = 0;
  EXPECT_THROW(run_campaign(cluster_, config(), opts), std::invalid_argument);
}

TEST_F(EngineTest, ResidentBytesStayWithinBudgetPlusOneBucket) {
  ThreadPool pool(4);
  auto cfg = config(/*runs=*/3);
  cfg.pool = &pool;

  obs::Registry registry;
  CampaignResult result;
  {
    obs::ScopedMetrics metrics_guard(&registry);
    CampaignOptions opts;
    opts.checkpoint_dir = fresh_dir("budget").string();
    opts.shard_budget_bytes = 1;  // tighter than any real bucket
    result = run_campaign(cluster_, cfg, opts);
  }
  ASSERT_GT(result.stats.bucket_bytes_max, 0u);
  // The memory contract: resident completed-bucket bytes never exceed
  // budget + the one bucket counted before eviction runs.
  EXPECT_LE(result.stats.resident_bytes_peak,
            1 + result.stats.bucket_bytes_max);
  EXPECT_EQ(result.stats.buckets_spilled, 3u);

  // The same facts surface through the metrics registry.
  std::ostringstream metrics_text;
  obs::write_metrics_text(metrics_text, registry.snapshot());
  const std::string text = metrics_text.str();
  EXPECT_NE(text.find("gauge engine.resident_bytes_peak"), std::string::npos);
  EXPECT_NE(text.find("counter engine.buckets_spilled 3"), std::string::npos);
  EXPECT_NE(text.find("counter engine.shards_written 3"), std::string::npos);
}

TEST_F(EngineTest, DegenerateCampaignsReturnEmptyFramesSilently) {
  bool progress_called = false;
  auto cfg = config();
  cfg.node_coverage = 0.0;
  cfg.progress = [&](std::size_t, std::size_t) { progress_called = true; };
  const CampaignResult zero_cov = run_campaign(cluster_, cfg);
  EXPECT_EQ(zero_cov.frame.size(), 0u);
  EXPECT_EQ(zero_cov.nodes_measured, 0u);
  EXPECT_FALSE(progress_called)
      << "a zero-bucket campaign must never invoke the progress callback";

  ClusterSpec empty_spec = cloudlab_spec();
  empty_spec.layout.nodes = 0;
  const Cluster empty_cluster(empty_spec);
  auto empty_cfg = default_config(empty_cluster, sgemm_workload(16384, 2), 2);
  empty_cfg.progress = [&](std::size_t, std::size_t) {
    progress_called = true;
  };
  const CampaignResult empty = run_campaign(empty_cluster, empty_cfg);
  EXPECT_EQ(empty.frame.size(), 0u);
  EXPECT_EQ(empty.gpus_measured, 0u);
  EXPECT_FALSE(progress_called);
}

TEST_F(EngineTest, ConfigHashSeparatesCampaigns) {
  const auto base = config();
  const std::uint64_t h = campaign_config_hash(cluster_, base);
  EXPECT_EQ(h, campaign_config_hash(cluster_, config()));

  auto runs = base;
  runs.runs_per_gpu = 5;
  EXPECT_NE(campaign_config_hash(cluster_, runs), h);
  auto day = base;
  day.day_of_week = 4;
  EXPECT_NE(campaign_config_hash(cluster_, day), h);
  auto salt = base;
  salt.salt = 99;
  EXPECT_NE(campaign_config_hash(cluster_, salt), h);
  auto coverage = base;
  coverage.node_coverage = 0.5;
  EXPECT_NE(campaign_config_hash(cluster_, coverage), h);

  // Workload *parameters* are identity too, not just the name:
  // `--reps` rebuilds the spec under the same name, and a checkpoint
  // measured under different reps must not pass as the same campaign.
  auto reps = base;
  reps.workload = sgemm_workload(16384, 3);
  ASSERT_EQ(reps.workload.name, base.workload.name);
  EXPECT_NE(campaign_config_hash(cluster_, reps), h);
  auto metric = base;
  metric.workload.metric = PerfMetric::kLongKernelSum;
  EXPECT_NE(campaign_config_hash(cluster_, metric), h);
  auto warmup = base;
  warmup.workload.warmup_iterations += 1;
  EXPECT_NE(campaign_config_hash(cluster_, warmup), h);
  auto kernel = base;
  kernel.workload.iteration.front().kernel.flops *= 2.0;
  EXPECT_NE(campaign_config_hash(cluster_, kernel), h);
  auto cap = base;
  cap.run_options.power_limit_override = Watts{150.0};
  EXPECT_NE(campaign_config_hash(cluster_, cap), h);
}

TEST_F(EngineTest, SweepBuildersNameJobsAfterTheirVariation) {
  const auto days = day_of_week_sweep(config());
  ASSERT_EQ(days.size(), 7u);
  EXPECT_EQ(days.front().name, "day-0");
  EXPECT_EQ(days.back().name, "day-6");
  EXPECT_EQ(days[3].config.day_of_week, 3);

  const auto caps = power_cap_sweep(config(), {150.0, 250.0});
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0].name, "cap-150w");
  EXPECT_EQ(caps[1].name, "cap-250w");
  EXPECT_THROW(power_cap_sweep(config(), {}), std::invalid_argument);
  EXPECT_THROW(power_cap_sweep(config(), {-5.0}), std::invalid_argument);
}

TEST_F(EngineTest, SweepResumeSkipsCompletedJobs) {
  const fs::path dir = fresh_dir("sweep");
  CampaignOptions opts;
  opts.checkpoint_dir = dir.string();
  const auto jobs = power_cap_sweep(config(/*runs=*/1), {150.0, 250.0});

  const auto first = run_campaign_sweep(cluster_, jobs, opts);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].result.stats.buckets_run, 3u);
  // The two cap campaigns measure different numbers: caps bite.
  EXPECT_NE(serialize_frame_shard(first[0].result.frame, 0),
            serialize_frame_shard(first[1].result.frame, 0));

  const auto second = run_campaign_sweep(cluster_, jobs, opts);
  for (std::size_t j = 0; j < second.size(); ++j) {
    EXPECT_EQ(second[j].result.stats.buckets_run, 0u)
        << "job " << second[j].name << " re-ran completed buckets";
    EXPECT_EQ(second[j].result.stats.buckets_restored, 3u);
    EXPECT_EQ(serialize_frame_shard(second[j].result.frame, 0),
              serialize_frame_shard(first[j].result.frame, 0));
  }

  CampaignJob bad;
  bad.name = "Bad Name!";
  bad.config = config();
  EXPECT_THROW(run_campaign_sweep(cluster_, {bad}, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
