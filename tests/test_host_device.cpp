#include "hostbench/host_device.hpp"
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace gpuvar::host {
namespace {

TEST(HostDevice, MeasuresDuration) {
  const auto r = measure_kernel("sleep", 0.0, 0.0, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  EXPECT_EQ(r.name, "sleep");
  EXPECT_GE(r.duration, Seconds{0.018});
  EXPECT_LT(r.duration, Seconds{0.5});
}

TEST(HostDevice, ComputesRates) {
  HostKernelResult r;
  r.duration = Seconds{2.0};
  r.work_flops = 4e9;
  r.work_bytes = 8e9;
  EXPECT_DOUBLE_EQ(r.gflops(), 2.0);
  EXPECT_DOUBLE_EQ(r.gbytes_per_s(), 4.0);
}

TEST(HostDevice, ZeroDurationRatesAreZero) {
  HostKernelResult r;
  r.work_flops = 1e9;
  EXPECT_DOUBLE_EQ(r.gflops(), 0.0);
}

TEST(HostDevice, RepeatedRunsWarmupDiscarded) {
  std::atomic<int> calls{0};
  const auto results = measure_repeated("k", 1.0, 1.0, 2, 5, [&] {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 7);       // 2 warmup + 5 measured
  EXPECT_EQ(results.size(), 5u);    // only measured runs returned
}

TEST(HostDevice, RejectsBadArguments) {
  EXPECT_THROW(measure_kernel("x", 0.0, 0.0, nullptr),
               std::invalid_argument);
  EXPECT_THROW(measure_repeated("x", 0.0, 0.0, -1, 1, [] {}),
               std::invalid_argument);
  EXPECT_THROW(measure_repeated("x", 0.0, 0.0, 0, 0, [] {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar::host
