#include "core/markdown_report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gpuvar.hpp"

namespace gpuvar {
namespace {

RecordFrame sample_campaign() {
  Cluster cloudlab(cloudlab_spec());
  auto cfg = default_config(cloudlab, sgemm_workload(25536, 5), 2);
  return run_experiment(cloudlab, cfg).frame;
}

TEST(MarkdownReport, EscapesTableBreakers) {
  EXPECT_EQ(markdown_escape("a|b"), "a\\|b");
  EXPECT_EQ(markdown_escape("a\nb"), "a<br>b");
  EXPECT_EQ(markdown_escape("plain"), "plain");
}

TEST(MarkdownReport, VariabilityTableIsValidMarkdown) {
  const auto records = sample_campaign();
  const auto table =
      markdown_variability_table(analyze_variability(records));
  // Header + separator + four metric rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 6);
  EXPECT_NE(table.find("| performance |"), std::string::npos);
  EXPECT_NE(table.find("| temperature |"), std::string::npos);
  // Every row has the same column count.
  std::istringstream lines(table);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), '|'), 8) << line;
  }
}

TEST(MarkdownReport, FullReportHasAllSections) {
  const auto records = sample_campaign();
  std::ostringstream out;
  MarkdownReportOptions opts;
  opts.title = "CloudLab SGEMM";
  opts.slowdown_temp = Celsius{87.0};
  write_markdown_report(out, records, opts);
  const std::string text = out.str();
  for (const char* needle :
       {"# CloudLab SGEMM", "## Variability", "## Correlations",
        "## Per-group breakdown", "## Operator flags",
        "bootstrap CI"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(MarkdownReport, FlagsSectionOptional) {
  const auto records = sample_campaign();
  std::ostringstream out;
  MarkdownReportOptions opts;
  opts.include_flags = false;
  opts.bootstrap_resamples = 0;
  write_markdown_report(out, records, opts);
  const std::string text = out.str();
  EXPECT_EQ(text.find("## Operator flags"), std::string::npos);
  EXPECT_EQ(text.find("bootstrap"), std::string::npos);
}

TEST(MarkdownReport, GroupSelectionRespected) {
  const auto records = sample_campaign();
  std::ostringstream out;
  MarkdownReportOptions opts;
  opts.group = GroupBy::kNode;
  opts.bootstrap_resamples = 0;
  write_markdown_report(out, records, opts);
  EXPECT_NE(out.str().find("node 00"), std::string::npos);
}

TEST(MarkdownReport, EmptyFrameThrows) {
  std::ostringstream out;
  RecordFrame none;
  EXPECT_THROW(write_markdown_report(out, none), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
