// Observability layer: lanes, spans, sharded metrics, exporters.
//
// The suite pins the three contracts DESIGN.md §8 promises: (1) the
// macro fast path is inert when no sink/registry is installed, (2) a
// lane's event stream is a pure function of the instrumented work
// (exception unwind included), and (3) merged metric snapshots and
// exported bytes are schedule-independent — byte-identical whatever
// the thread-pool size that produced them.
//
// Tests may touch trace-layer internals (current_lane, TraceSpan)
// directly: the analyzer's raw-trace-api rule scopes to src/**.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpuvar::obs {
namespace {

TEST(Trace, NoSinkFastPathIsInert) {
  ASSERT_EQ(trace(), nullptr) << "a previous test leaked an installed sink";
  EXPECT_EQ(current_lane(), nullptr);
  {
    // Adopting a lane without a sink must be a no-op, and the macros
    // must be safe to execute.
    LaneScope lane(5, "orphan");
    EXPECT_EQ(current_lane(), nullptr);
    GPUVAR_TRACE_SPAN("cat", "nothing");
    GPUVAR_TRACE_INSTANT("cat", "nothing");
    GPUVAR_TRACE_ADVANCE(Seconds{1.0});
  }
  // A sink installed *after* the orphan scope saw none of it.
  TraceSink sink;
  ScopedTrace guard(&sink);
  EXPECT_EQ(sink.event_count(), 0u);
  EXPECT_EQ(sink.lane_count(), 0u);
}

TEST(Trace, SpanNestingKeepsPerLaneSequence) {
  TraceSink sink;
  {
    ScopedTrace guard(&sink);
    LaneScope lane(3, "worker");
    GPUVAR_TRACE_SPAN("outer", "a");
    {
      GPUVAR_TRACE_SPAN("inner", "b", "depth", 2);
      GPUVAR_TRACE_INSTANT("inner", "tick");
    }
  }
  ASSERT_EQ(sink.lane_count(), 1u);
  const auto events = sink.lanes().front()->events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(sink.lanes().front()->id(), 3u);
  EXPECT_EQ(sink.lanes().front()->label(), "worker");
  const TracePhase want[] = {TracePhase::kBegin, TracePhase::kBegin,
                             TracePhase::kInstant, TracePhase::kEnd,
                             TracePhase::kEnd};
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].phase, want[i]) << "event " << i;
    EXPECT_EQ(events[i].seq, i) << "per-lane sequence must be dense";
  }
  EXPECT_STREQ(events[1].arg_key, "depth");
  EXPECT_EQ(events[1].arg_val, 2);
}

TEST(Trace, SpanClosesOnExceptionUnwind) {
  TraceSink sink;
  {
    ScopedTrace guard(&sink);
    LaneScope lane(0, "main");
    try {
      GPUVAR_TRACE_SPAN("exp", "doomed");
      throw std::runtime_error("boom");
    } catch (const std::runtime_error&) {
    }
  }
  const auto events = sink.lanes().front()->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, TracePhase::kBegin);
  EXPECT_EQ(events[1].phase, TracePhase::kEnd)
      << "RAII must close the span during unwind or the JSON nests wrong";
}

TEST(Trace, LaneClockAdvancesMonotonically) {
  TraceSink sink;
  {
    ScopedTrace guard(&sink);
    LaneScope lane(0, "main");
    GPUVAR_TRACE_ADVANCE(Seconds{0.5});
    GPUVAR_TRACE_INSTANT("t", "at-500ms");
    // Ranks settle at different device clocks: an older timestamp must
    // not rewind the lane.
    GPUVAR_TRACE_ADVANCE(Seconds{0.25});
    GPUVAR_TRACE_INSTANT("t", "still-500ms");
    GPUVAR_TRACE_ADVANCE(Seconds{0.75});
    GPUVAR_TRACE_INSTANT("t", "at-750ms");
  }
  const auto events = sink.lanes().front()->events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ts_us, 500000.0);
  EXPECT_EQ(events[1].ts_us, 500000.0);
  EXPECT_EQ(events[2].ts_us, 750000.0);
}

TEST(Trace, LaneScopeNestsAndRestores) {
  TraceSink sink;
  {
    ScopedTrace guard(&sink);
    LaneScope campaign(0, "campaign");
    GPUVAR_TRACE_INSTANT("t", "before");
    {
      LaneScope job(1, "node 1");
      GPUVAR_TRACE_INSTANT("t", "inside");
    }
    GPUVAR_TRACE_INSTANT("t", "after");
  }
  ASSERT_EQ(sink.lane_count(), 2u);
  const auto lanes = sink.lanes();
  ASSERT_EQ(lanes[0]->events().size(), 2u);  // before + after on lane 0
  ASSERT_EQ(lanes[1]->events().size(), 1u);
  EXPECT_STREQ(lanes[1]->events()[0].name, "inside");
}

TEST(Trace, ChromeTraceGoldenBytes) {
  TraceSink sink;
  {
    ScopedTrace guard(&sink);
    LaneScope lane(1, "node 1");
    GPUVAR_TRACE_SPAN("exp", "job", "node", 7);
    GPUVAR_TRACE_ADVANCE(Seconds{0.5});
    GPUVAR_TRACE_INSTANT("exp", "tick");
  }
  std::ostringstream out;
  write_chrome_trace(out, sink);
  EXPECT_EQ(out.str(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"node 1\"}},\n"
            "{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0,\"cat\":\"exp\","
            "\"name\":\"job\",\"args\":{\"seq\":0,\"node\":7}},\n"
            "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":500000,\"cat\":\"exp\","
            "\"name\":\"tick\",\"s\":\"t\",\"args\":{\"seq\":1}},\n"
            "{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":500000,"
            "\"args\":{\"seq\":2}}\n"
            "]}\n");
}

TEST(Metrics, NoRegistryFastPathIsInert) {
  ASSERT_EQ(metrics(), nullptr)
      << "a previous test leaked an installed registry";
  GPUVAR_METRIC_COUNT("orphan.count");
  GPUVAR_METRIC_MAX("orphan.max", 9);
  GPUVAR_METRIC_HIST("orphan.hist", 9);
  Registry reg;
  ScopedMetrics guard(&reg);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Metrics, CounterGaugeHistogramSemantics) {
  Registry reg;
  ScopedMetrics guard(&reg);
  GPUVAR_METRIC_ADD("c", 3);
  GPUVAR_METRIC_ADD("c", 4);
  EXPECT_EQ(reg.counter("c").value(), 7u);

  GPUVAR_METRIC_MAX("g", 9);
  GPUVAR_METRIC_MAX("g", 5);  // below the high water: ignored
  EXPECT_TRUE(reg.gauge("g").has_value());
  EXPECT_EQ(reg.gauge("g").value(), 9u);

  GPUVAR_METRIC_HIST("h", 0);
  GPUVAR_METRIC_HIST("h", 5);
  const auto s = reg.histogram("h").snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.total, 5u);
  EXPECT_EQ(s.lo, 0u);
  EXPECT_EQ(s.hi, 5u);
}

TEST(Metrics, HistogramBucketsAreBitWidth) {
  // Bucket b holds values with bit_width(v) == b: [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
}

TEST(Metrics, CounterHandleRevalidatesAcrossInstalls) {
  // The macro's per-callsite cache must not keep feeding a previously
  // installed registry. One call site, two registries.
  const auto bump = [] { GPUVAR_METRIC_COUNT("epoch.bumps"); };
  Registry a;
  {
    ScopedMetrics guard(&a);
    bump();
    bump();
  }
  Registry b;
  {
    ScopedMetrics guard(&b);
    bump();
  }
  EXPECT_EQ(a.counter("epoch.bumps").value(), 2u);
  EXPECT_EQ(b.counter("epoch.bumps").value(), 1u);
}

TEST(Metrics, TextDumpGoldenBytes) {
  Registry reg;
  {
    ScopedMetrics guard(&reg);
    GPUVAR_METRIC_ADD("alpha.count", 3);
    GPUVAR_METRIC_MAX("beta.high", 9);
    GPUVAR_METRIC_HIST("gamma.dist", 5);
    GPUVAR_METRIC_HIST("gamma.dist", 0);
  }
  std::ostringstream out;
  write_metrics_text(out, reg.snapshot());
  EXPECT_EQ(out.str(),
            "# gpuvar metrics v1\n"
            "counter alpha.count 3\n"
            "gauge beta.high 9\n"
            "histogram gamma.dist count 2 sum 5 min 0 max 5 b0:1 b3:1\n");
}

/// Hammers one registry from a pool of `threads` workers and returns
/// the exported dump: the bytes must not depend on the schedule.
std::string stress_dump(std::size_t threads) {
  Registry reg;
  ScopedMetrics guard(&reg);
  ThreadPool pool(threads);
  pool.parallel_for(512, [](std::size_t i) {
    GPUVAR_METRIC_COUNT("stress.iterations");
    GPUVAR_METRIC_ADD("stress.work", i % 7);
    GPUVAR_METRIC_MAX("stress.peak", i);
    GPUVAR_METRIC_HIST("stress.latency_us", (i * 37) % 1024);
  });
  std::ostringstream out;
  write_metrics_text(out, reg.snapshot());
  return out.str();
}

TEST(Metrics, MergedSnapshotIsScheduleIndependent) {
  const std::string one = stress_dump(1);
  EXPECT_EQ(one, stress_dump(4))
      << "metrics dump differs between 1 and 4 threads: a merge is not "
         "commutative";
  EXPECT_EQ(one, stress_dump(8))
      << "metrics dump differs between 1 and 8 threads: a merge is not "
         "commutative";
  // And the values themselves are the closed forms of the loop above.
  EXPECT_NE(one.find("counter stress.iterations 512\n"), std::string::npos);
  EXPECT_NE(one.find("gauge stress.peak 511\n"), std::string::npos);
}

}  // namespace
}  // namespace gpuvar::obs
