#include "stats/sampling.hpp"

#include <gtest/gtest.h>

namespace gpuvar::stats {
namespace {

TEST(ZForConfidence, KnownValues) {
  EXPECT_NEAR(z_for_confidence(0.95), 1.95996, 1e-4);
  EXPECT_NEAR(z_for_confidence(0.99), 2.57583, 1e-4);
  EXPECT_THROW(z_for_confidence(1.0), std::invalid_argument);
}

TEST(SampleSize, GrowsWithCv) {
  const auto low = recommend_sample_size(10000, 0.01, 0.005, 0.95);
  const auto high = recommend_sample_size(10000, 0.05, 0.005, 0.95);
  EXPECT_GT(high.recommended, low.recommended);
}

TEST(SampleSize, ShrinksWithLooserAccuracy) {
  const auto tight = recommend_sample_size(10000, 0.02, 0.002, 0.95);
  const auto loose = recommend_sample_size(10000, 0.02, 0.02, 0.95);
  EXPECT_LT(loose.recommended, tight.recommended);
}

TEST(SampleSize, CappedByPopulation) {
  const auto plan = recommend_sample_size(50, 0.5, 0.001, 0.95);
  EXPECT_LE(plan.recommended, 50u);
}

TEST(SampleSize, ZeroCvNeedsOneSample) {
  const auto plan = recommend_sample_size(1000, 0.0, 0.005, 0.95);
  EXPECT_EQ(plan.recommended, 1u);
}

TEST(SampleSize, FinitePopulationCorrectionReduces) {
  // Same CV/lambda: a small population needs fewer samples than the
  // uncorrected n0.
  const double cv = 0.05, lambda = 0.005;
  const auto small = recommend_sample_size(500, cv, lambda, 0.95);
  const auto large = recommend_sample_size(1000000, cv, lambda, 0.95);
  EXPECT_LT(small.recommended, large.recommended);
  EXPECT_LE(small.recommended, 500u);
}

TEST(SampleSize, PaperScenario) {
  // The paper: lambda = 0.5% accuracy for mean power, 95% confidence,
  // sampling >90% of GPUs gives a 2.9x oversampling margin. With a
  // power CV of ~2% (GPUs pinned near TDP), the recommendation should be
  // far below 90% of the cluster.
  const std::size_t population = 416;
  const auto plan = recommend_sample_size(population, 0.02, 0.005, 0.95);
  const std::size_t actual = 416 * 9 / 10;
  EXPECT_GE(oversampling_factor(plan, actual), 2.0);
}

TEST(SampleSize, RejectsBadInputs) {
  EXPECT_THROW(recommend_sample_size(0, 0.1, 0.01, 0.95),
               std::invalid_argument);
  EXPECT_THROW(recommend_sample_size(10, -0.1, 0.01, 0.95),
               std::invalid_argument);
  EXPECT_THROW(recommend_sample_size(10, 0.1, 0.0, 0.95),
               std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar::stats
