#include "cluster/faults.hpp"
#include "common/location.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

#include <gtest/gtest.h>


namespace gpuvar {
namespace {

GpuLocation loc_at(int cabinet, int node = 0, int row = -1, int column = -1) {
  GpuLocation loc;
  loc.cabinet = cabinet;
  loc.node = node;
  loc.row = row;
  loc.column = column;
  loc.name = "test";
  return loc;
}

TEST(Faults, EmptyPlanLeavesGpuHealthy) {
  FaultPlan plan;
  Rng rng(1, "g");
  const auto applied = apply_faults(plan, loc_at(0), rng);
  EXPECT_FALSE(applied.any());
  EXPECT_DOUBLE_EQ(applied.power_cap.value(), 0.0);
  EXPECT_DOUBLE_EQ(applied.mem_bw_factor, 1.0);
  EXPECT_DOUBLE_EQ(applied.r_multiplier, 1.0);
}

TEST(Faults, CabinetScopedRuleOnlyHitsCabinet) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kPowerCap;
  rule.cabinets = {3};
  rule.probability = 1.0;
  rule.cap_mean = Watts{250.0};
  plan.rules.push_back(rule);

  Rng in_rng(1, "in"), out_rng(1, "out");
  EXPECT_TRUE(apply_faults(plan, loc_at(3), in_rng).has(FaultKind::kPowerCap));
  EXPECT_FALSE(apply_faults(plan, loc_at(4), out_rng).any());
}

TEST(Faults, RowColumnScope) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kPowerCap;
  rule.row_columns = {{7, 35}};
  rule.probability = 1.0;
  plan.rules.push_back(rule);
  Rng a(1, "a"), b(1, "b");
  EXPECT_TRUE(apply_faults(plan, loc_at(0, 0, 7, 35), a).any());
  EXPECT_FALSE(apply_faults(plan, loc_at(0, 0, 7, 34), b).any());
}

TEST(Faults, NodeScope) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kPumpFailure;
  rule.nodes = {15};
  rule.probability = 1.0;
  rule.cap_mean = Watts{165.0};
  plan.rules.push_back(rule);
  Rng a(1, "a"), b(1, "b");
  const auto hit = apply_faults(plan, loc_at(5, 15), a);
  EXPECT_TRUE(hit.has(FaultKind::kPumpFailure));
  EXPECT_NEAR(hit.power_cap.value(), 165.0, 30.0);
  EXPECT_FALSE(apply_faults(plan, loc_at(5, 16), b).any());
}

TEST(Faults, ProbabilityRoughlyRespected) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kPowerCap;
  rule.probability = 0.25;
  plan.rules.push_back(rule);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Rng rng(9, "g:" + std::to_string(i));
    if (apply_faults(plan, loc_at(0), rng).any()) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Faults, DegradedBoardSetsCapAndMemory) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kDegradedBoard;
  rule.probability = 1.0;
  rule.cap_mean = Watts{252.0};
  rule.mem_bw_factor = 0.22;
  plan.rules.push_back(rule);
  Rng rng(1, "g");
  const auto applied = apply_faults(plan, loc_at(0), rng);
  EXPECT_GT(applied.power_cap, Watts{200.0});
  EXPECT_DOUBLE_EQ(applied.mem_bw_factor, 0.22);
}

TEST(Faults, CoolingDegradedAdjustsThermals) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kCoolingDegraded;
  rule.probability = 1.0;
  rule.r_multiplier = 1.5;
  rule.inlet_delta = Celsius{7.0};
  plan.rules.push_back(rule);
  Rng rng(1, "g");
  const auto applied = apply_faults(plan, loc_at(0), rng);
  EXPECT_DOUBLE_EQ(applied.r_multiplier, 1.5);
  EXPECT_DOUBLE_EQ(applied.inlet_delta.value(), 7.0);
  EXPECT_DOUBLE_EQ(applied.power_cap.value(), 0.0);
}

TEST(Faults, MultipleCapsTakeMinimum) {
  FaultPlan plan;
  FaultRule a;
  a.kind = FaultKind::kPowerCap;
  a.probability = 1.0;
  a.cap_mean = Watts{280.0};
  a.cap_sigma = Watts{0.0};
  FaultRule b = a;
  b.cap_mean = Watts{250.0};
  plan.rules.push_back(a);
  plan.rules.push_back(b);
  Rng rng(1, "g");
  EXPECT_DOUBLE_EQ(apply_faults(plan, loc_at(0), rng).power_cap.value(), 250.0);
}

TEST(Faults, OutcomeIndependentOfOtherRulesScopes) {
  // A GPU's draw for rule 2 must not shift when rule 1's scope excludes it.
  FaultRule r1;
  r1.kind = FaultKind::kCoolingDegraded;
  r1.probability = 0.5;
  FaultRule r2;
  r2.kind = FaultKind::kPowerCap;
  r2.probability = 0.5;
  r2.cap_sigma = Watts{0.0};

  FaultPlan in_scope;
  in_scope.rules = {r1, r2};
  FaultPlan out_of_scope;
  r1.cabinets = {99};  // same rule, now out of scope for cabinet 0
  out_of_scope.rules = {r1, r2};

  for (int i = 0; i < 200; ++i) {
    Rng a(5, "g:" + std::to_string(i)), b(5, "g:" + std::to_string(i));
    const bool cap_a =
        apply_faults(in_scope, loc_at(0), a).has(FaultKind::kPowerCap);
    const bool cap_b =
        apply_faults(out_of_scope, loc_at(0), b).has(FaultKind::kPowerCap);
    EXPECT_EQ(cap_a, cap_b) << "draw " << i;
  }
}

TEST(Faults, Names) {
  EXPECT_EQ(to_string(FaultKind::kPowerCap), "power-cap");
  EXPECT_EQ(to_string(FaultKind::kPumpFailure), "pump-failure");
  EXPECT_EQ(to_string(FaultKind::kWeakSilicon), "weak-silicon");
}

}  // namespace
}  // namespace gpuvar
