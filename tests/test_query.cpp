// Query-plane property tests: every migrated analysis over a
// dataset-backed Source must be byte-identical to the same analysis
// over the materialized frame, across thread counts, cache budgets,
// and pushdown on/off; pushdown must demonstrably skip shards on
// header facts; and the decoded-shard cache must respect its byte
// budget up to the one-shard high-water slack the design promises.
#include "query/source.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/bytesize.hpp"
#include "common/thread_pool.hpp"
#include "core/cli.hpp"
#include "core/compare.hpp"
#include "core/correlate.hpp"
#include "core/drift.hpp"
#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/flagging.hpp"
#include "core/user_impact.hpp"
#include "core/variability.hpp"
#include "obs/metrics.hpp"
#include "query/dataset.hpp"
#include "stats/boxplot.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/shard.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {
namespace {

namespace fs = std::filesystem;

// ---- report fingerprints ---------------------------------------------
// Hexfloat round-trips doubles exactly: two fingerprints are equal iff
// every numeric field is bit-identical (modulo -0.0 == 0.0, which the
// analyses never distinguish).

void put(std::ostream& o, double v) { o << std::hexfloat << v << ','; }

void put_box(std::ostream& o, const stats::BoxSummary& b) {
  o << b.count << ',';
  put(o, b.q1);
  put(o, b.median);
  put(o, b.q3);
  put(o, b.lo_whisker);
  put(o, b.hi_whisker);
  put(o, b.min);
  put(o, b.max);
  o << b.outlier_indices.size() << ';';
}

std::string fp(const VariabilityReport& r) {
  std::ostringstream o;
  o << r.records << ',' << r.gpus << ';';
  for (const MetricVariability* m : {&r.perf, &r.freq, &r.power, &r.temp}) {
    put_box(o, m->box);
    put(o, m->variation_pct);
  }
  return o.str();
}

std::string fp(const FlagReport& r) {
  std::ostringstream o;
  for (const GpuFlag& g : r.gpus) {
    o << g.gpu_index << ',' << g.name << ',' << g.reasons.size() << ',';
    put(o, g.severity);
    o << ';';
  }
  for (const CabinetFlag& c : r.cabinets) o << c.cabinet << ',' << c.note << ';';
  return o.str();
}

std::string fp(const std::vector<DriftFlag>& v) {
  std::ostringstream o;
  for (const DriftFlag& d : v) {
    o << d.gpu_index << ',' << d.name << ',' << d.runs << ',';
    put(o, d.baseline_ms);
    put(o, d.recent_ewma_ms);
    put(o, d.drift_pct);
    put(o, d.noise_sigmas);
    o << ';';
  }
  return o.str();
}

std::string fp(const CampaignComparison& c) {
  std::ostringstream o;
  o << c.matched_gpus << ',' << c.only_before << ',' << c.only_after << ',';
  put(o, c.median_delta_pct);
  put(o, c.noise_floor_pct);
  o << c.significant.size() << ';';
  for (const GpuDelta& d : c.all) {
    o << d.name << ',';
    put(o, d.before_ms);
    put(o, d.after_ms);
    put(o, d.delta_pct);
    o << ';';
  }
  return o.str();
}

std::string fp(const std::vector<JobImpact>& v) {
  std::ostringstream o;
  for (const JobImpact& j : v) {
    o << j.gpus_per_job << ',';
    put(o, j.expected_slowdown);
    put(o, j.p95_slowdown);
    put(o, j.p_any_slow);
    o << ';';
  }
  return o.str();
}

std::string fp(const CorrelationReport& r) {
  std::ostringstream o;
  for (const MetricCorrelation* m : r.all()) {
    put(o, m->rho);
    put(o, m->spearman);
    o << m->strength << ';';
  }
  return o.str();
}

/// Every analysis, fingerprinted over one source. `compare` runs the
/// source against itself — a degenerate but fully deterministic
/// pairing. `impact_width` caps the impact table's widest job for
/// sources filtered down to small populations.
std::string fp_all(const query::Source& s, int impact_width = 8) {
  UserImpactOptions impact;
  impact.max_width = impact_width;
  return fp(analyze_variability(s)) + '|' + fp(analyze_flags(s)) + '|' +
         fp(analyze_drift(s)) + '|' + fp(analyze_compare(s, s)) + '|' +
         fp(analyze_user_impact(s, impact)) + '|' + fp(analyze_correlation(s));
}

// ---- fixture ---------------------------------------------------------

/// One checkpointed campaign, written once and shared by every test in
/// the suite (Dataset opens are cheap; the campaign run is not).
class QueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::path(::testing::TempDir()) / "gpuvar_query");
    fs::remove_all(*dir_);
    fs::create_directories(*dir_);
    const Cluster cluster{cloudlab_spec()};
    const auto cfg = default_config(cluster, sgemm_workload(16384, 2), 2);
    CampaignOptions opts;
    opts.checkpoint_dir = dir_->string();
    frame_ = new RecordFrame(run_campaign(cluster, cfg, opts).frame);
  }
  static void TearDownTestSuite() {
    delete frame_;
    fs::remove_all(*dir_);
    delete dir_;
    frame_ = nullptr;
    dir_ = nullptr;
  }

  static std::string dir() { return dir_->string(); }
  static const RecordFrame& frame() { return *frame_; }

  /// Full decode size of the largest shard: the cache's high-water
  /// slack, and a budget that can hold one shard but not two.
  static std::uint64_t max_shard_bytes(const query::Dataset& d) {
    std::uint64_t hi = 0;
    for (std::size_t i = 0; i < d.shards().size(); ++i) {
      hi = std::max<std::uint64_t>(hi,
                                   d.fetch(i, kShardColsAll)->memory_bytes());
    }
    return hi;
  }

 private:
  static fs::path* dir_;
  static RecordFrame* frame_;
};

fs::path* QueryTest::dir_ = nullptr;
RecordFrame* QueryTest::frame_ = nullptr;

// ---- tests -----------------------------------------------------------

TEST_F(QueryTest, OpenSeesCompleteCampaign) {
  const query::Dataset d = query::Dataset::open(dir());
  EXPECT_TRUE(d.complete());
  EXPECT_GE(d.shards().size(), 2u) << "pushdown tests need several shards";
  EXPECT_EQ(d.total_rows(), frame().size());
}

TEST_F(QueryTest, MaterializeRebuildsEngineFrameByteForByte) {
  const query::Dataset d = query::Dataset::open(dir());
  const RecordFrame rebuilt = d.materialize();
  EXPECT_EQ(serialize_frame_shard(rebuilt, 0), serialize_frame_shard(frame(), 0))
      << "materialize() diverged from the frame the engine merged";
}

TEST_F(QueryTest, AnalysesByteIdenticalAcrossThreadsBudgetsAndPushdown) {
  const std::string want = fp_all(query::Source(frame()));
  const std::uint64_t one_shard = max_shard_bytes(query::Dataset::open(dir()));
  ASSERT_GT(one_shard, 0u);

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(threads);
    for (std::uint64_t budget : {std::uint64_t{0}, one_shard, kUnlimitedBytes}) {
      for (bool pushdown : {false, true}) {
        query::DatasetOptions opts;
        opts.cache_budget_bytes = budget;
        opts.pushdown = pushdown;
        opts.pool = &pool;
        const query::Dataset d = query::Dataset::open(dir(), opts);
        const query::Source s(d);
        EXPECT_EQ(fp_all(s), want)
            << "threads=" << threads << " budget=" << budget
            << " pushdown=" << pushdown;
      }
    }
  }
}

TEST_F(QueryTest, PredicateMatchesFrameSelectByteForByte) {
  // Restrict to the first shard's node range: a filter that keeps some
  // rows and (on a multi-shard store) drops others.
  const query::Dataset d = query::Dataset::open(dir());
  const FrameShardStats s0 = d.shards().front().header.stats;
  query::Predicate where;
  where.node.lo = s0.node_min;
  where.node.hi = s0.node_max;

  // Reference: the frame rows the predicate matches, via frame.select.
  const RecordFrame& f = frame();
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (where.matches(f.gpus()[f.gpu_ids()[i]], f.days_of_week()[i])) {
      rows.push_back(i);
    }
  }
  ASSERT_FALSE(rows.empty());
  ASSERT_LT(rows.size(), f.size()) << "predicate must actually filter";
  const RecordFrame selected = f.select(rows);

  const query::Source streamed(d, where);
  ASSERT_EQ(streamed.size(), selected.size());
  // The filtered population can be narrower than the default 8-GPU
  // impact table; cap the width to what it can answer (both sides see
  // the same cap, so byte-identity is still pinned).
  const int width =
      static_cast<int>(std::min<std::size_t>(4, selected.gpu_count()));
  ASSERT_GE(width, 1);
  EXPECT_EQ(fp_all(streamed, width), fp_all(query::Source(selected), width));
}

TEST_F(QueryTest, PushdownSkipsShardsOnHeaderFactsAlone) {
  const query::Dataset probe = query::Dataset::open(dir());
  const auto& shards = probe.shards();
  // Target one node from the first shard; any shard whose header range
  // excludes it must be skipped without a read.
  const std::int64_t node = shards.front().header.stats.node_min;
  query::Predicate where;
  where.node.lo = node;
  where.node.hi = node;
  std::uint64_t expect_scanned = 0;
  for (const auto& sh : shards) {
    if (where.may_match(sh.header.stats)) ++expect_scanned;
  }
  ASSERT_LT(expect_scanned, shards.size())
      << "every shard overlaps one node; bucketing must have changed";

  obs::Registry reg;
  {
    obs::ScopedMetrics guard(&reg);
    const query::Dataset d = query::Dataset::open(dir());
    const query::Source s(d, where);
    EXPECT_GT(s.size(), 0u);
  }
  EXPECT_EQ(reg.counter("query.shards_scanned").value(), expect_scanned);
  EXPECT_EQ(reg.counter("query.shards_skipped").value(),
            shards.size() - expect_scanned);

  // With pushdown disabled every shard is scanned — and (per the matrix
  // test) the result bytes do not change.
  obs::Registry reg_off;
  {
    obs::ScopedMetrics guard(&reg_off);
    query::DatasetOptions opts;
    opts.pushdown = false;
    const query::Dataset d = query::Dataset::open(dir(), opts);
    const query::Source s(d, where);
    EXPECT_GT(s.size(), 0u);
  }
  EXPECT_EQ(reg_off.counter("query.shards_skipped").value(), 0u);
  EXPECT_EQ(reg_off.counter("query.shards_scanned").value(), shards.size());
}

TEST_F(QueryTest, CachePeakStaysWithinBudgetPlusOneShard) {
  const std::uint64_t one_shard = max_shard_bytes(query::Dataset::open(dir()));
  obs::Registry reg;
  {
    obs::ScopedMetrics guard(&reg);
    query::DatasetOptions opts;
    opts.cache_budget_bytes = one_shard;  // holds one shard, never two
    const query::Dataset d = query::Dataset::open(dir(), opts);
    (void)d.materialize();  // touches every shard, full column mask
    (void)d.materialize();  // second pass: eviction-heavy, zero retention wins
  }
  ASSERT_TRUE(reg.gauge("query.cache_bytes_peak").has_value());
  // The documented bound: the peak is recorded after insert, before
  // eviction, so it may exceed the budget by at most one decoded shard.
  EXPECT_LE(reg.gauge("query.cache_bytes_peak").value(), one_shard + one_shard);
  EXPECT_GT(reg.counter("query.cache_evictions").value(), 0u);
}

TEST_F(QueryTest, UnlimitedCacheServesRepeatScansFromMemory) {
  obs::Registry reg;
  {
    obs::ScopedMetrics guard(&reg);
    const query::Dataset d = query::Dataset::open(dir());  // unlimited budget
    (void)d.materialize();
    const std::uint64_t misses_cold =
        reg.counter("query.cache_misses").value();
    EXPECT_EQ(misses_cold, d.shards().size());
    (void)d.materialize();
    EXPECT_EQ(reg.counter("query.cache_misses").value(), misses_cold)
        << "warm pass must not re-decode";
    EXPECT_GE(reg.counter("query.cache_hits").value(), d.shards().size());
    EXPECT_EQ(reg.counter("query.cache_evictions").value(), 0u);
  }
}

TEST_F(QueryTest, ZeroBudgetRetainsNothing) {
  obs::Registry reg;
  {
    obs::ScopedMetrics guard(&reg);
    query::DatasetOptions opts;
    opts.cache_budget_bytes = 0;
    const query::Dataset d = query::Dataset::open(dir(), opts);
    (void)d.materialize();
    (void)d.materialize();
  }
  EXPECT_EQ(reg.counter("query.cache_hits").value(), 0u);
}

TEST_F(QueryTest, CliQueryMatchesMaterializedOutputByteForByte) {
  for (const char* analysis :
       {"variability", "correlate", "flags", "drift", "impact"}) {
    std::ostringstream streamed, materialized, err;
    ASSERT_EQ(cli::run_cli({"query", dir(), "--analysis", analysis}, streamed,
                           err),
              0)
        << err.str();
    ASSERT_EQ(cli::run_cli(
                  {"query", dir(), "--analysis", analysis, "--materialize"},
                  materialized, err),
              0)
        << err.str();
    EXPECT_EQ(streamed.str(), materialized.str()) << analysis;
  }
}

}  // namespace
}  // namespace gpuvar
