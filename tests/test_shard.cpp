// FrameShard is the engine's durability format: every checkpointed
// bucket round-trips through it, so "bit-identical" here is load-bearing
// for the campaign determinism contract — a resumed campaign merges
// shard-restored buckets next to freshly-run ones and the output must
// not betray which was which.
#include "telemetry/shard.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/binio.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {
namespace {

/// A frame with enough variety to exercise the whole payload: several
/// interned GPUs (revisited out of order), negative and sentinel field
/// values, non-finite doubles, and a name that needs CSV-style care.
RecordFrame varied_frame() {
  RecordFrame frame;
  for (int i = 0; i < 6; ++i) {
    RunRecord r;
    r.gpu_index = static_cast<std::size_t>(100 + i % 3);  // 3 GPUs, revisited
    r.loc.node = i % 3;
    r.loc.gpu = i % 2;
    r.loc.cabinet = 7;
    r.loc.row = -1;
    r.loc.column = 42;
    r.loc.node_in_group = i;
    r.loc.name = "node" + std::to_string(i % 3) + "-gpu,weird\"name";
    r.run_index = i;
    r.day_of_week = (i % 2 == 0) ? -1 : 3;
    r.perf_ms = 123.456 + i;
    r.freq_mhz = 1410.0 - i * 0.25;
    r.power_w = (i == 4) ? 0.0 : 287.5;
    r.temp_c = 65.0 + i;
    r.counters.fu_util = 0.5;
    r.counters.dram_util = (i == 5) ? -0.0 : 0.25;
    r.counters.mem_stall_frac = 1.0 / 3.0;
    r.counters.exec_stall_frac = 1e-300;
    frame.append_row(r);
  }
  return frame;
}

TEST(FrameShard, RoundTripIsBitIdentical) {
  const RecordFrame frame = varied_frame();
  const std::string bytes = serialize_frame_shard(frame, 42);
  const FrameShard parsed = parse_frame_shard(bytes, "test");

  EXPECT_EQ(parsed.info.bucket_index, 42u);
  EXPECT_EQ(parsed.info.rows, frame.size());
  ASSERT_EQ(parsed.frame.size(), frame.size());
  ASSERT_EQ(parsed.frame.gpu_count(), frame.gpu_count());

  // The decisive check: re-serializing the parsed frame reproduces the
  // original shard byte for byte (pool order, ids, every f64 bit).
  EXPECT_EQ(serialize_frame_shard(parsed.frame, 42), bytes);

  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(parsed.frame.gpu_index(i), frame.gpu_index(i));
    EXPECT_EQ(parsed.frame.loc(i).name, frame.loc(i).name);
    EXPECT_EQ(parsed.frame.run_index(i), frame.run_index(i));
    EXPECT_EQ(parsed.frame.day_of_week(i), frame.day_of_week(i));
  }
}

TEST(FrameShard, EmptyFrameRoundTrips) {
  const RecordFrame empty;
  const std::string bytes = serialize_frame_shard(empty, 0);
  EXPECT_EQ(bytes.size(), kFrameShardHeaderBytes);
  const FrameShard parsed = parse_frame_shard(bytes, "empty");
  EXPECT_EQ(parsed.frame.size(), 0u);
  EXPECT_EQ(parsed.info.payload_bytes, 0u);
}

TEST(FrameShard, StreamRoundTripReportsInfo) {
  const RecordFrame frame = varied_frame();
  std::stringstream stream;
  const FrameShardInfo info = write_frame_shard(stream, frame, 7);
  EXPECT_EQ(info.bucket_index, 7u);
  EXPECT_EQ(info.rows, frame.size());
  EXPECT_EQ(stream.str().size(), info.payload_bytes + kFrameShardHeaderBytes);

  const FrameShard parsed = read_frame_shard(stream, "stream");
  EXPECT_EQ(parsed.info.payload_hash, info.payload_hash);
  EXPECT_EQ(serialize_frame_shard(parsed.frame, 7), stream.str());
}

TEST(FrameShard, TruncatedShardIsRejectedWithClearError) {
  const std::string bytes = serialize_frame_shard(varied_frame(), 1);
  // Every strict prefix must fail loudly, never parse as a smaller
  // frame: a half-written spill file cannot masquerade as data.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3},
                          kFrameShardHeaderBytes - 1, kFrameShardHeaderBytes,
                          bytes.size() - 1}) {
    EXPECT_THROW(parse_frame_shard(std::string_view(bytes).substr(0, cut),
                                   "trunc"),
                 std::runtime_error)
        << "prefix of " << cut << " bytes parsed";
  }
  try {
    parse_frame_shard(std::string_view(bytes).substr(0, bytes.size() - 1),
                      "bucket-000001.shard");
    FAIL() << "truncated shard parsed";
  } catch (const std::runtime_error& e) {
    // The error names the file and says what is wrong with it.
    EXPECT_NE(std::string(e.what()).find("bucket-000001.shard"),
              std::string::npos);
  }
}

TEST(FrameShard, BadMagicIsRejected) {
  std::string bytes = serialize_frame_shard(varied_frame(), 0);
  bytes[0] = 'X';
  try {
    parse_frame_shard(bytes, "notashard");
    FAIL() << "bad magic parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
}

TEST(FrameShard, UnsupportedVersionIsRejected) {
  std::string bytes = serialize_frame_shard(varied_frame(), 0);
  bytes[4] = static_cast<char>(kFrameShardVersion + 1);  // version u16 LE
  try {
    parse_frame_shard(bytes, "future");
    FAIL() << "future version parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(FrameShard, CorruptPayloadFailsTheHashCheck) {
  std::string bytes = serialize_frame_shard(varied_frame(), 0);
  // Flip one payload byte; the header's FNV-1a hash must catch it.
  bytes[bytes.size() - 1] = static_cast<char>(bytes.back() ^ 0x01);
  try {
    parse_frame_shard(bytes, "corrupt");
    FAIL() << "corrupt payload parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hash"), std::string::npos);
  }
}

TEST(FrameShard, HeaderLengthLieIsRejected) {
  const RecordFrame frame = varied_frame();
  std::string bytes = serialize_frame_shard(frame, 0);
  // Understate payload_bytes in the header (offset 4+2+8+8+8 = 30,
  // little-endian u64): the size cross-check fires before any decode.
  bytes[30] = static_cast<char>(bytes[30] ^ 0x01);
  EXPECT_THROW(parse_frame_shard(bytes, "lying-header"), std::runtime_error);
}

TEST(FrameShard, HeaderRowCountLieIsRejectedAsRuntimeError) {
  // Understate the header's row count (u64 at offset 4+2+8 = 14). The
  // payload size and hash checks still pass — they cover only the
  // payload — so the only defense is the trailing-bytes check after
  // the last column. It must throw std::runtime_error (never
  // std::logic_error): the engine's resume scan demotes runtime_error
  // to "re-run this bucket", while anything else aborts the campaign.
  std::string bytes = serialize_frame_shard(varied_frame(), 0);
  ASSERT_EQ(static_cast<unsigned char>(bytes[14]), 6u);  // rows == 6
  bytes[14] = 2;
  try {
    parse_frame_shard(bytes, "rows-lie");
    FAIL() << "row-count lie parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rows-lie"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
  }
}

TEST(FrameShard, StreamingHashMatchesSerializedBytes) {
  // hash_frame_shard must equal hashing the materialized serialization
  // — the guard that keeps the streaming emitter and the serializer
  // from drifting apart field by field.
  const RecordFrame frame = varied_frame();
  EXPECT_EQ(hash_frame_shard(frame, 42),
            binio::fnv1a64(serialize_frame_shard(frame, 42)));
  EXPECT_NE(hash_frame_shard(frame, 42), hash_frame_shard(frame, 43));
  const RecordFrame empty;
  EXPECT_EQ(hash_frame_shard(empty, 0),
            binio::fnv1a64(serialize_frame_shard(empty, 0)));

  // And the incremental hasher itself is chunking-independent.
  const std::string bytes = serialize_frame_shard(frame, 42);
  binio::Fnv1a64 pieces;
  pieces.update(std::string_view(bytes).substr(0, 7));
  pieces.update(std::string_view(bytes).substr(7));
  EXPECT_EQ(pieces.digest(), binio::fnv1a64(bytes));
}

TEST(FrameShard, SerializationIsDeterministic) {
  // Two serializations of equal frames are equal bytes — the property
  // the manifest's recorded payload hash depends on.
  const std::string a = serialize_frame_shard(varied_frame(), 3);
  const std::string b = serialize_frame_shard(varied_frame(), 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(binio::fnv1a64(a), binio::fnv1a64(b));
}

}  // namespace
}  // namespace gpuvar
