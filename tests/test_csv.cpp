#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gpuvar {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldsWithComma) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, EscapesEmbeddedQuotes) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, QuotesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"x", "y"});
  csv.add(1.5).add("foo");
  csv.end_row();
  csv.flush();
  EXPECT_EQ(out.str(), "x,y\n1.5,foo\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, EnforcesRowWidthAgainstHeader) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b", "c"});
  csv.add(1).add(2);
  EXPECT_THROW(csv.end_row(), std::invalid_argument);
}

TEST(CsvWriter, RejectsSecondHeader) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"b"}), std::invalid_argument);
}

TEST(CsvWriter, WorksWithoutHeader) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"p", "q"});
  csv.row({"r"});  // width unchecked without a header
  csv.flush();
  EXPECT_EQ(out.str(), "p,q\nr\n");
}

TEST(CsvWriter, FormatsIntegers) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.add(42).add(static_cast<long long>(-7)).add(std::size_t{9});
  csv.end_row();
  csv.flush();
  EXPECT_EQ(out.str(), "42,-7,9\n");
}

TEST(CsvWriter, FormatsNonFiniteDoubles) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.add(std::numeric_limits<double>::quiet_NaN())
      .add(std::numeric_limits<double>::infinity());
  csv.end_row();
  csv.flush();
  EXPECT_EQ(out.str(), "nan,inf\n");
}

TEST(CsvWriter, DestructorFlushesBufferedRows) {
  std::ostringstream out;
  {
    CsvWriter csv(out);
    csv.add("a").add("b");
    csv.end_row();
    // Small rows stay buffered until flush()/destruction.
  }
  EXPECT_EQ(out.str(), "a,b\n");
}

TEST(CsvWriter, EndRowWithoutFieldsThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  EXPECT_THROW(csv.end_row(), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
