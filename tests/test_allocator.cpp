#include "cluster/allocator.hpp"
#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gpuvar {
namespace {

TEST(Allocator, AllNodesCoversCluster) {
  Cluster c(vortex_spec());
  ExclusiveAllocator alloc(c);
  const auto nodes = alloc.all_nodes();
  EXPECT_EQ(nodes.size(), 54u);
  std::size_t gpus = 0;
  for (const auto& n : nodes) gpus += n.gpu_indices.size();
  EXPECT_EQ(gpus, c.size());
}

TEST(Allocator, SampleNodesIsDeterministicAndDistinct) {
  Cluster c(vortex_spec());
  ExclusiveAllocator alloc(c);
  const auto a = alloc.sample_nodes(20);
  const auto b = alloc.sample_nodes(20);
  ASSERT_EQ(a.size(), 20u);
  std::set<int> seen;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    seen.insert(a[i].node);
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(Allocator, SampleMoreThanAvailableReturnsAll) {
  Cluster c(cloudlab_spec());
  ExclusiveAllocator alloc(c);
  EXPECT_EQ(alloc.sample_nodes(100).size(), 3u);
}

TEST(Allocator, CoverageFraction) {
  Cluster c(longhorn_spec());
  ExclusiveAllocator alloc(c);
  // The paper measures >90% of GPUs.
  EXPECT_EQ(alloc.sample_coverage(0.9).size(), 94u);  // ceil(0.9 * 104)
  EXPECT_EQ(alloc.sample_coverage(1.0).size(), 104u);
  EXPECT_GE(alloc.sample_coverage(0.001).size(), 1u);
}

TEST(Allocator, CoverageRejectsBadFractions) {
  Cluster c(cloudlab_spec());
  ExclusiveAllocator alloc(c);
  EXPECT_THROW(alloc.sample_coverage(-0.1), std::invalid_argument);
  EXPECT_THROW(alloc.sample_coverage(1.5), std::invalid_argument);
}

TEST(Allocator, ZeroCoverageIsAnEmptyCampaign) {
  Cluster c(cloudlab_spec());
  ExclusiveAllocator alloc(c);
  EXPECT_TRUE(alloc.sample_coverage(0.0).empty());
}

TEST(Allocator, AllocationsExposeNodeGpus) {
  Cluster c(cloudlab_spec());
  ExclusiveAllocator alloc(c);
  for (const auto& n : alloc.all_nodes()) {
    EXPECT_EQ(n.gpu_indices, c.node_gpus(n.node));
  }
}

}  // namespace
}  // namespace gpuvar
