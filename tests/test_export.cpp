#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/runner.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "gpu/timeseries.hpp"
#include "telemetry/run_result.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {
namespace {

TEST(Export, ResultsCsvHasHeaderAndRows) {
  Cluster c(cloudlab_spec());
  auto w = sgemm_workload(8192, 2);
  auto opts = RunOptions::for_sku(c.sku());
  std::vector<GpuRunResult> results;
  results.push_back(run_on_gpu(c, 0, w, 0, opts));
  results.push_back(run_on_gpu(c, 1, w, 0, opts));

  std::ostringstream out;
  export_results_csv(out, c.name(), c.locations(), results);
  const std::string text = out.str();

  // Header plus one line per result.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("cluster,gpu,node"), std::string::npos);
  EXPECT_NE(text.find("cloudlab"), std::string::npos);
  EXPECT_NE(text.find(c.gpu(0).loc.name), std::string::npos);
}

TEST(Export, ResultsCsvRoundTripsPerf) {
  Cluster c(cloudlab_spec());
  auto w = sgemm_workload(8192, 2);
  auto opts = RunOptions::for_sku(c.sku());
  const auto r = run_on_gpu(c, 0, w, 0, opts);
  std::ostringstream out;
  export_results_csv(out, c.name(), c.locations(), std::vector<GpuRunResult>{r});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", r.perf_ms);
  EXPECT_NE(out.str().find(buf), std::string::npos);
}

TEST(Export, SeriesCsv) {
  TimeSeries series;
  series.push(Sample{Seconds{0.0}, MegaHertz{1400.0}, Watts{290.0}, Celsius{60.0}});
  series.push(Sample{Seconds{0.001}, MegaHertz{1395.0}, Watts{295.0}, Celsius{61.0}});
  std::ostringstream out;
  export_series_csv(out, series);
  const std::string text = out.str();
  EXPECT_NE(text.find("t_s,freq_mhz,power_w,temp_c"), std::string::npos);
  EXPECT_NE(text.find("1400"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Export, ImportRoundTripsExport) {
  Cluster c(cloudlab_spec());
  auto w = sgemm_workload(8192, 2);
  auto opts = RunOptions::for_sku(c.sku());
  std::vector<GpuRunResult> results;
  for (std::size_t g = 0; g < 4; ++g) {
    results.push_back(run_on_gpu(c, g, w, static_cast<int>(g), opts));
  }
  std::ostringstream out;
  export_results_csv(out, c.name(), c.locations(), results);
  std::istringstream in(out.str());
  const auto frame = import_results_frame(in);
  ASSERT_EQ(frame.size(), 4u);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(frame.loc(i).name, c.gpu(results[i].gpu_index).loc.name);
    EXPECT_NEAR(frame.perf_ms()[i], results[i].perf_ms,
                1e-8 * results[i].perf_ms);
    EXPECT_NEAR(frame.power_w()[i], results[i].telemetry.power.median,
                1e-6);
    EXPECT_EQ(frame.run_index(i), static_cast<int>(i));
    EXPECT_NEAR(frame.fu_util()[i], 10.0, 1e-9);
  }
  // Distinct GPUs keep distinct synthesized indices.
  EXPECT_NE(frame.gpu_index(0), frame.gpu_index(1));
}

TEST(Export, ImportRejectsMissingColumns) {
  std::istringstream in("gpu,node\nfoo,1\n");
  EXPECT_THROW(import_results_frame(in), std::invalid_argument);
}

TEST(Export, EmptySeriesJustHeader) {
  TimeSeries series;
  std::ostringstream out;
  export_series_csv(out, series);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

}  // namespace
}  // namespace gpuvar
