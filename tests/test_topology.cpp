#include "cluster/topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace gpuvar {
namespace {

TEST(Topology, CabinetLayoutLocations) {
  ClusterLayout layout;
  layout.nodes = 104;
  layout.gpus_per_node = 4;
  layout.nodes_per_cabinet = 8;
  layout.validate();
  EXPECT_EQ(layout.cabinets(), 13);
  EXPECT_EQ(layout.total_gpus(), 416);

  const auto loc = locate(layout, 17, 2);
  EXPECT_EQ(loc.node, 17);
  EXPECT_EQ(loc.gpu, 2);
  EXPECT_EQ(loc.cabinet, 2);
  EXPECT_EQ(loc.node_in_group, 1);
  EXPECT_EQ(loc.name, "c002-002-gpu2");
}

TEST(Topology, NodeLabelBaseShifts) {
  ClusterLayout layout;
  layout.nodes = 6;
  layout.gpus_per_node = 1;
  layout.nodes_per_cabinet = 1;
  const auto loc = locate(layout, 5, 0, 100);
  EXPECT_EQ(loc.name, "c105-001-gpu0");
}

TEST(Topology, RowLayoutLocations) {
  ClusterLayout layout;
  layout.rows = 8;
  layout.columns = 29;
  layout.nodes_per_column = 18;
  layout.nodes = 8 * 29 * 18;
  layout.gpus_per_node = 6;
  layout.validate();
  EXPECT_EQ(layout.total_gpus(), 25056 - 0);  // 4176 nodes * 6

  // Row H (index 7), column 36 is out of range here; use column 29 - 1.
  const int node = 7 * (29 * 18) + 28 * 18 + 9;  // row h, col 29, node 10
  const auto loc = locate(layout, node, 2);
  EXPECT_EQ(loc.row, 7);
  EXPECT_EQ(loc.column, 28);
  EXPECT_EQ(loc.node_in_group, 9);
  EXPECT_EQ(loc.name, "rowh-col29-n10-3");
}

TEST(Topology, RowLayoutCabinetIsRowColumnPair) {
  ClusterLayout layout;
  layout.rows = 2;
  layout.columns = 3;
  layout.nodes_per_column = 2;
  layout.nodes = 12;
  layout.gpus_per_node = 1;
  const auto a = locate(layout, 0, 0);
  const auto b = locate(layout, 1, 0);   // same column
  const auto c = locate(layout, 2, 0);   // next column
  EXPECT_EQ(a.cabinet, b.cabinet);
  EXPECT_NE(a.cabinet, c.cabinet);
}

TEST(Topology, ValidateCatchesDimensionMismatch) {
  ClusterLayout layout;
  layout.rows = 2;
  layout.columns = 3;
  layout.nodes_per_column = 2;
  layout.nodes = 11;  // != 12
  layout.gpus_per_node = 1;
  EXPECT_THROW(layout.validate(), std::invalid_argument);
}

TEST(Topology, LocateRejectsOutOfRange) {
  ClusterLayout layout;
  layout.nodes = 4;
  layout.gpus_per_node = 2;
  EXPECT_THROW(locate(layout, 4, 0), std::invalid_argument);
  EXPECT_THROW(locate(layout, 0, 2), std::invalid_argument);
}

TEST(Topology, RowLetters) {
  EXPECT_EQ(row_letter(0), 'a');
  EXPECT_EQ(row_letter(7), 'h');
  EXPECT_THROW(row_letter(-1), std::invalid_argument);
  EXPECT_THROW(row_letter(26), std::invalid_argument);
}

TEST(Topology, UniqueNamesAcrossCluster) {
  ClusterLayout layout;
  layout.nodes = 54;
  layout.gpus_per_node = 4;
  layout.nodes_per_cabinet = 3;
  std::set<std::string> names;
  for (int n = 0; n < layout.nodes; ++n) {
    for (int g = 0; g < layout.gpus_per_node; ++g) {
      names.insert(locate(layout, n, g).name);
    }
  }
  EXPECT_EQ(names.size(), 216u);
}

}  // namespace
}  // namespace gpuvar
