#include "core/cli.hpp"
#include "gpu/sku.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace gpuvar::cli {
namespace {

int run(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::ostringstream out, err;
  const int rc = run_cli(args, out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    csv_path_ = std::filesystem::temp_directory_path() /
                "gpuvar_cli_test_results.csv";
    std::filesystem::remove(csv_path_);
  }
  void TearDown() override { std::filesystem::remove(csv_path_); }

  std::filesystem::path csv_path_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  std::string err;
  EXPECT_EQ(run({}, nullptr, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  std::string err;
  EXPECT_EQ(run({"frobnicate"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, ListsClustersAndWorkloads) {
  std::string out;
  EXPECT_EQ(run({"clusters"}, &out), 0);
  EXPECT_NE(out.find("longhorn"), std::string::npos);
  EXPECT_NE(out.find("summit"), std::string::npos);
  EXPECT_EQ(run({"workloads"}, &out), 0);
  EXPECT_NE(out.find("pagerank"), std::string::npos);
}

TEST_F(CliTest, FactoriesRejectUnknownNames) {
  EXPECT_THROW(cluster_by_name("nope"), std::invalid_argument);
  EXPECT_THROW(workload_by_name("nope"), std::invalid_argument);
  EXPECT_EQ(cluster_by_name("corona").sku.vendor, Vendor::kAmd);
  EXPECT_EQ(workload_by_name("bert", 7).iterations, 7);
  EXPECT_EQ(workload_by_name("bert").iterations, 250);
}

TEST_F(CliTest, SimulateAnalyzeFlagProjectPipeline) {
  std::string out;
  EXPECT_EQ(run({"simulate", "--cluster", "cloudlab", "--workload", "sgemm",
                 "--reps", "5", "--runs", "2", "--out", csv_path_.string()},
                &out),
            0);
  EXPECT_NE(out.find("variability"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(csv_path_));

  EXPECT_EQ(run({"analyze", csv_path_.string()}, &out), 0);
  EXPECT_NE(out.find("correlations"), std::string::npos);
  EXPECT_NE(out.find("performance by cabinet"), std::string::npos);

  EXPECT_EQ(run({"flag", csv_path_.string(), "--slowdown-temp", "87"}, &out),
            0);
  EXPECT_NE(out.find("early-warning"), std::string::npos);

  EXPECT_EQ(
      run({"project", csv_path_.string(), "--target", "27648"}, &out), 0);
  EXPECT_NE(out.find("projected variation at 27648"), std::string::npos);
}

TEST_F(CliTest, ReportCompareDriftPipeline) {
  std::string out;
  ASSERT_EQ(run({"simulate", "--cluster", "cloudlab", "--workload", "sgemm",
                 "--reps", "4", "--runs", "3", "--out", csv_path_.string()},
                &out),
            0);

  EXPECT_EQ(run({"report", csv_path_.string(), "--title", "My campaign",
                 "--slowdown-temp", "87"},
                &out),
            0);
  EXPECT_NE(out.find("# My campaign"), std::string::npos);
  EXPECT_NE(out.find("## Variability"), std::string::npos);

  // Compare a campaign against itself: no significant changes.
  EXPECT_EQ(run({"compare", csv_path_.string(), csv_path_.string()}, &out),
            0);
  EXPECT_NE(out.find("no significant per-GPU changes"), std::string::npos);

  EXPECT_EQ(run({"drift", csv_path_.string()}, &out), 0);
  EXPECT_NE(out.find("no drift detected"), std::string::npos);
}

TEST_F(CliTest, DriftWithoutHistoryFailsGracefully) {
  std::string out;
  ASSERT_EQ(run({"simulate", "--cluster", "cloudlab", "--workload", "sgemm",
                 "--reps", "3", "--runs", "1", "--out", csv_path_.string()},
                &out),
            0);
  std::string err;
  EXPECT_EQ(run({"drift", csv_path_.string()}, nullptr, &err), 1);
  EXPECT_NE(err.find("history"), std::string::npos);
}

TEST_F(CliTest, AnalyzeMissingFileFailsGracefully) {
  std::string err;
  EXPECT_EQ(run({"analyze", "/nonexistent/x.csv"}, nullptr, &err), 1);
  EXPECT_NE(err.find("error:"), std::string::npos);
}

TEST_F(CliTest, ProjectRequiresTarget) {
  std::string out;
  EXPECT_EQ(run({"simulate", "--cluster", "cloudlab", "--workload",
                 "pagerank", "--reps", "4", "--out", csv_path_.string()},
                &out),
            0);
  std::string err;
  EXPECT_EQ(run({"project", csv_path_.string()}, nullptr, &err), 1);
}

TEST_F(CliTest, MissingOptionValueFails) {
  std::string err;
  EXPECT_EQ(run({"simulate", "--cluster"}, nullptr, &err), 1);
  EXPECT_NE(err.find("missing value"), std::string::npos);
}

// Byte-budget grammar and overflow tests live in test_bytesize.cpp,
// next to the shared parse_byte_size every budget flag routes through.

TEST_F(CliTest, SimulateSwitchesToAmdGemmOnCorona) {
  // Simulating SGEMM on corona must pick the 24576 AMD input size without
  // the caller knowing about it. We verify via a tiny coverage run.
  std::string out;
  EXPECT_EQ(run({"simulate", "--cluster", "corona", "--workload", "sgemm",
                 "--reps", "3", "--runs", "1", "--coverage", "0.05"},
                &out),
            0);
  EXPECT_NE(out.find("simulating sgemm on corona"), std::string::npos);
}

}  // namespace
}  // namespace gpuvar::cli
