#include "common/units.hpp"

#include <gtest/gtest.h>

#include <type_traits>

#include "common/require.hpp"

namespace gpuvar {
namespace {

// ---------------------------------------------------------------------
// Compile-time negative checks: the entire point of Quantity<Tag> is the
// operations that do NOT compile. A requires-expression evaluates to
// false when the expression is ill-formed, so each banned operation is
// pinned here as a static_assert — if someone ever adds an implicit
// conversion or a cross-unit operator, this file stops building.
// ---------------------------------------------------------------------

template <class A, class B>
concept Addable = requires(A a, B b) { a + b; };
template <class A, class B>
concept Subtractable = requires(A a, B b) { a - b; };
template <class A, class B>
concept Comparable = requires(A a, B b) { a < b; };
template <class A, class B>
concept Multipliable = requires(A a, B b) { a* b; };
template <class A, class B>
concept Dividable = requires(A a, B b) { a / b; };

// Mixed units never add, subtract, or order.
static_assert(!Addable<Watts, Celsius>);
static_assert(!Addable<Seconds, MegaHertz>);
static_assert(!Subtractable<Joules, Watts>);
static_assert(!Comparable<Watts, Celsius>);
static_assert(!Comparable<Seconds, Joules>);

// A quantity never silently absorbs a raw double (scaling aside).
static_assert(!Addable<Watts, double>);
static_assert(!Addable<double, Watts>);
static_assert(!Subtractable<Seconds, double>);
static_assert(!Comparable<MegaHertz, double>);
static_assert(!Comparable<double, MegaHertz>);

// No implicit construction from double, no implicit decay to double.
static_assert(!std::is_convertible_v<double, Watts>);
static_assert(!std::is_convertible_v<Watts, double>);
static_assert(std::is_constructible_v<Watts, double>);  // explicit is fine

// Only the physically meaningful cross-unit products exist.
static_assert(Multipliable<Watts, Seconds>);   // -> Joules
static_assert(Multipliable<Seconds, Watts>);   // commutes
static_assert(Dividable<Joules, Seconds>);     // -> Watts
static_assert(Dividable<Joules, Watts>);       // -> Seconds
static_assert(!Multipliable<Watts, Watts>);    // W² is meaningless here
static_assert(!Multipliable<Celsius, Seconds>);
static_assert(!Dividable<Watts, Celsius>);

static_assert(std::is_same_v<decltype(Watts{1.0} * Seconds{1.0}), Joules>);
static_assert(std::is_same_v<decltype(Joules{1.0} / Seconds{1.0}), Watts>);
static_assert(std::is_same_v<decltype(Joules{1.0} / Watts{1.0}), Seconds>);
static_assert(std::is_same_v<decltype(Watts{1.0} / Watts{2.0}), double>);

// Zero-cost: the wrapper is exactly one double, trivially copyable.
static_assert(sizeof(Watts) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Watts>);
static_assert(std::is_trivially_destructible_v<Seconds>);

// Everything is constexpr end to end.
static_assert((250.0_W * 2.0_s).value() == 500.0);
static_assert(abs(Celsius{-4.0}) == Celsius{4.0});
static_assert(1530.0_mhz > 540.0_mhz);

TEST(Units, SameUnitArithmetic) {
  EXPECT_DOUBLE_EQ((Watts{250.0} + Watts{50.0}).value(), 300.0);
  EXPECT_DOUBLE_EQ((Watts{250.0} - Watts{50.0}).value(), 200.0);
  Watts w{100.0};
  w += Watts{20.0};
  w -= Watts{5.0};
  EXPECT_DOUBLE_EQ(w.value(), 115.0);
  EXPECT_DOUBLE_EQ((-Celsius{21.5}).value(), -21.5);
  EXPECT_DOUBLE_EQ((+Celsius{21.5}).value(), 21.5);
}

TEST(Units, ScalarScaling) {
  EXPECT_DOUBLE_EQ((MegaHertz{1000.0} * 1.53).value(), 1530.0);
  EXPECT_DOUBLE_EQ((2.0 * Seconds{0.25}).value(), 0.5);
  EXPECT_DOUBLE_EQ((Joules{90.0} / 3.0).value(), 30.0);
  MegaHertz f{100.0};
  f *= 3.0;
  f /= 2.0;
  EXPECT_DOUBLE_EQ(f.value(), 150.0);
}

TEST(Units, LikeUnitRatioIsDimensionless) {
  const double ratio = MegaHertz{1530.0} / MegaHertz{765.0};
  EXPECT_DOUBLE_EQ(ratio, 2.0);
}

TEST(Units, PowerTimeEnergyTriangle) {
  const Watts p{300.0};
  const Seconds t{2.0};
  const Joules e = p * t;
  EXPECT_DOUBLE_EQ(e.value(), 600.0);
  EXPECT_DOUBLE_EQ((e / t).value(), p.value());
  EXPECT_DOUBLE_EQ((e / p).value(), t.value());
  EXPECT_DOUBLE_EQ((t * p).value(), e.value());
}

TEST(Units, OrderingAndEquality) {
  EXPECT_LT(Celsius{83.0}, Celsius{87.0});
  EXPECT_GE(Watts{300.0}, Watts{300.0});
  EXPECT_EQ(Seconds{0.5}, Seconds{0.5});
  EXPECT_NE(Volts{0.8}, Volts{0.9});
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((250.0_W).value(), 250.0);
  EXPECT_DOUBLE_EQ((300_W).value(), 300.0);
  EXPECT_DOUBLE_EQ((1530.0_mhz).value(), 1530.0);
  EXPECT_DOUBLE_EQ((85.0_degC).value(), 85.0);
  EXPECT_DOUBLE_EQ((1.5_ms).value(), 0.0015);
  EXPECT_DOUBLE_EQ((2_s).value(), 2.0);
  EXPECT_DOUBLE_EQ((1.05_V).value(), 1.05);
  EXPECT_DOUBLE_EQ((600.0_J).value(), 600.0);
}

TEST(Units, AbsoluteValue) {
  EXPECT_DOUBLE_EQ(abs(MegaHertz{-7.5}).value(), 7.5);
  EXPECT_DOUBLE_EQ(abs(MegaHertz{7.5}).value(), 7.5);
}

TEST(Units, ExplicitDoubleExit) {
  const Watts w{123.5};
  EXPECT_DOUBLE_EQ(w.value(), 123.5);
  EXPECT_DOUBLE_EQ(static_cast<double>(w), 123.5);
}

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_DOUBLE_EQ(Watts{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Seconds{}.value(), 0.0);
}

TEST(Units, AbsoluteZeroFloor) {
  EXPECT_DOUBLE_EQ(kAbsoluteZero.value(), -273.15);
  EXPECT_LT(kAbsoluteZero, Celsius{0.0});
}

TEST(Units, MillisecondConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_ms(Seconds{2.5}), 2500.0);
  EXPECT_DOUBLE_EQ(from_ms(2500.0).value(), 2.5);
  EXPECT_DOUBLE_EQ(from_ms(to_ms(Seconds{0.123456})).value(), 0.123456);
}

TEST(Units, ProfilerFloorIsOneMillisecond) {
  EXPECT_DOUBLE_EQ(kMinSamplingInterval.value(), 1e-3);
}

TEST(Require, RequireThrowsInvalidArgumentWithContext) {
  try {
    GPUVAR_REQUIRE_MSG(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("test_units.cpp"), std::string::npos);
  }
}

TEST(Require, AssertThrowsLogicError) {
  EXPECT_THROW(GPUVAR_ASSERT(false), std::logic_error);
  EXPECT_NO_THROW(GPUVAR_ASSERT(true));
  EXPECT_NO_THROW(GPUVAR_REQUIRE(true));
}

TEST(Require, ConditionOnlyEvaluatedOnce) {
  int calls = 0;
  auto once = [&] {
    ++calls;
    return true;
  };
  GPUVAR_REQUIRE(once());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gpuvar
