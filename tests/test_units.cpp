#include "common/units.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace gpuvar {
namespace {

TEST(Units, MillisecondConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_ms(2.5), 2500.0);
  EXPECT_DOUBLE_EQ(from_ms(2500.0), 2.5);
  EXPECT_DOUBLE_EQ(from_ms(to_ms(0.123456)), 0.123456);
}

TEST(Units, ProfilerFloorIsOneMillisecond) {
  EXPECT_DOUBLE_EQ(kMinSamplingInterval, 1e-3);
}

TEST(Require, RequireThrowsInvalidArgumentWithContext) {
  try {
    GPUVAR_REQUIRE_MSG(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("test_units.cpp"), std::string::npos);
  }
}

TEST(Require, AssertThrowsLogicError) {
  EXPECT_THROW(GPUVAR_ASSERT(false), std::logic_error);
  EXPECT_NO_THROW(GPUVAR_ASSERT(true));
  EXPECT_NO_THROW(GPUVAR_REQUIRE(true));
}

TEST(Require, ConditionOnlyEvaluatedOnce) {
  int calls = 0;
  auto once = [&] {
    ++calls;
    return true;
  };
  GPUVAR_REQUIRE(once());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gpuvar
