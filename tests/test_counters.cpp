#include "telemetry/counters.hpp"

#include <gtest/gtest.h>

#include "workloads/workload.hpp"
#include "common/units.hpp"
#include "gpu/kernel.hpp"

namespace gpuvar {
namespace {

KernelSpec kernel_with(double fu, double dram, double mem_stall) {
  KernelSpec k;
  k.name = "k";
  k.flops = 1.0;
  k.fu_util = fu;
  k.dram_util = dram;
  k.mem_stall_frac = mem_stall;
  return k;
}

TEST(Counters, EmptyAggregateIsZero) {
  CounterAccumulator acc;
  const auto c = acc.aggregate();
  EXPECT_DOUBLE_EQ(c.fu_util, 0.0);
  EXPECT_DOUBLE_EQ(c.dram_util, 0.0);
}

TEST(Counters, SingleKernelPassesThrough) {
  CounterAccumulator acc;
  acc.add(kernel_with(10.0, 2.0, 0.03), Seconds{1.5});
  const auto c = acc.aggregate();
  EXPECT_DOUBLE_EQ(c.fu_util, 10.0);
  EXPECT_DOUBLE_EQ(c.dram_util, 2.0);
  EXPECT_DOUBLE_EQ(c.mem_stall_frac, 0.03);
  EXPECT_DOUBLE_EQ(acc.total_time().value(), 1.5);
}

TEST(Counters, TimeWeightedAverage) {
  CounterAccumulator acc;
  acc.add(kernel_with(10.0, 0.0, 0.0), Seconds{3.0});
  acc.add(kernel_with(0.0, 10.0, 1.0), Seconds{1.0});
  const auto c = acc.aggregate();
  EXPECT_NEAR(c.fu_util, 7.5, 1e-12);
  EXPECT_NEAR(c.dram_util, 2.5, 1e-12);
  EXPECT_NEAR(c.mem_stall_frac, 0.25, 1e-12);
}

TEST(Counters, ZeroDurationAddsNothing) {
  CounterAccumulator acc;
  acc.add(kernel_with(10.0, 10.0, 1.0), Seconds{0.0});
  EXPECT_DOUBLE_EQ(acc.aggregate().fu_util, 0.0);
}

TEST(Counters, NegativeDurationThrows) {
  CounterAccumulator acc;
  EXPECT_THROW(acc.add(kernel_with(1.0, 1.0, 0.0), Seconds{-1.0}),
               std::invalid_argument);
}

TEST(Counters, PaperCalibrationRatios) {
  // The paper's cross-workload profiling facts, which classify apps:
  //   * SGEMM FU util = 10, ResNet ~5.4
  //   * LAMMPS DRAM util ~42x ResNet's
  //   * LAMMPS DRAM util ~4.24x PageRank's
  //   * PageRank mem stalls 61% vs 7% (LAMMPS) vs 3% (SGEMM)
  auto aggregate = [](const WorkloadSpec& w) {
    CounterAccumulator acc;
    for (const auto& step : w.iteration) {
      // weight by nominal V100 duration share; flops/bytes serve as proxy
      const double t =
          std::max(step.kernel.flops / 1e13, step.kernel.bytes / 7e11);
      acc.add(step.kernel, Seconds{t * step.count});
    }
    return acc.aggregate();
  };
  const auto sgemm = aggregate(sgemm_workload(25536, 1));
  const auto resnet = aggregate(resnet50_multi_workload(1));
  const auto lammps = aggregate(lammps_workload(1));
  const auto pagerank = aggregate(pagerank_workload(1));

  EXPECT_DOUBLE_EQ(sgemm.fu_util, 10.0);
  EXPECT_NEAR(resnet.fu_util, 5.4, 1.2);
  EXPECT_GT(lammps.dram_util / resnet.dram_util, 20.0);
  EXPECT_NEAR(lammps.dram_util / pagerank.dram_util, 4.24, 1.0);
  EXPECT_NEAR(pagerank.mem_stall_frac, 0.61, 0.02);
  EXPECT_NEAR(lammps.mem_stall_frac, 0.07, 0.02);
  EXPECT_NEAR(sgemm.mem_stall_frac, 0.03, 0.01);
  // PageRank execution-dependency stalls ~12x less than SGEMM's.
  EXPECT_GT(sgemm.exec_stall_frac / pagerank.exec_stall_frac, 8.0);
}

}  // namespace
}  // namespace gpuvar
