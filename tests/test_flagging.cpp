#include "core/flagging.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "telemetry/frame.hpp"
#include "cluster/cluster.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {
namespace {

RunRecord rec(std::size_t gpu, double perf, double power, double temp,
              int cabinet = 0) {
  RunRecord r;
  r.gpu_index = gpu;
  r.loc.cabinet = cabinet;
  r.loc.name = "gpu" + std::to_string(gpu);
  r.perf_ms = perf;
  r.freq_mhz = 1400.0;
  r.power_w = power;
  r.temp_c = temp;
  return r;
}

/// Test-local frame construction (the bulk row adapters are gone).
RecordFrame frame_from(const std::vector<RunRecord>& rows) {
  RecordFrame f;
  f.reserve(rows.size());
  for (const auto& r : rows) f.append_row(r);
  return f;
}

std::vector<RunRecord> healthy_population(int n) {
  std::vector<RunRecord> rs;
  for (int i = 0; i < n; ++i) {
    rs.push_back(rec(i, 2500.0 + (i % 7), 297.0 + 0.1 * (i % 5),
                     60.0 + (i % 9), i / 4));
  }
  return rs;
}

TEST(Flagging, CleanPopulationNoFlags) {
  const auto report = flag_anomalies(frame_from(healthy_population(40)));
  EXPECT_TRUE(report.gpus.empty());
  EXPECT_TRUE(report.cabinets.empty());
}

TEST(Flagging, SlowOutlierFlagged) {
  auto rs = healthy_population(40);
  rs.push_back(rec(99, 3400.0, 297.0, 62.0));
  const auto report = flag_anomalies(frame_from(rs));
  ASSERT_EQ(report.gpus.size(), 1u);
  EXPECT_EQ(report.gpus[0].gpu_index, 99u);
  EXPECT_TRUE(report.gpus[0].has(FlagReason::kSlowOutlier));
  EXPECT_GT(report.gpus[0].severity, 0.0);
}

TEST(Flagging, UnexplainedPowerDropFlagged) {
  // The Summit row-H signature: low power, normal temperature.
  auto rs = healthy_population(40);
  rs.push_back(rec(99, 2503.0, 255.0, 61.0));
  const auto report = flag_anomalies(frame_from(rs));
  ASSERT_EQ(report.gpus.size(), 1u);
  EXPECT_TRUE(report.gpus[0].has(FlagReason::kUnexplainedPowerDrop));
}

TEST(Flagging, PowerDropExplainedByHeatIsNotUnexplained) {
  auto rs = healthy_population(40);
  rs.push_back(rec(99, 2503.0, 255.0, 95.0));  // hot: thermal, not board
  const auto report = flag_anomalies(frame_from(rs));
  ASSERT_EQ(report.gpus.size(), 1u);
  EXPECT_FALSE(report.gpus[0].has(FlagReason::kUnexplainedPowerDrop));
  EXPECT_TRUE(report.gpus[0].has(FlagReason::kThermalOutlier));
}

TEST(Flagging, SortedBySeverity) {
  auto rs = healthy_population(40);
  rs.push_back(rec(98, 2900.0, 297.0, 61.0));
  rs.push_back(rec(99, 3800.0, 297.0, 61.0));  // much worse
  const auto report = flag_anomalies(frame_from(rs));
  ASSERT_EQ(report.gpus.size(), 2u);
  EXPECT_EQ(report.gpus[0].gpu_index, 99u);
  EXPECT_GE(report.gpus[0].severity, report.gpus[1].severity);
}

TEST(Flagging, PumpSignatureFlagsCabinet) {
  // Frontera c197: members simultaneously slow, cool, low-power.
  auto rs = healthy_population(40);
  rs.push_back(rec(90, 2560.0, 250.0, 45.0, /*cabinet=*/9));
  rs.push_back(rec(91, 2555.0, 248.0, 44.0, /*cabinet=*/9));
  const auto report = flag_anomalies(frame_from(rs));
  ASSERT_EQ(report.cabinets.size(), 1u);
  EXPECT_EQ(report.cabinets[0].cabinet, 9);
  EXPECT_NE(report.cabinets[0].note.find("pump"), std::string::npos);
}

TEST(Flagging, RepeatOffendersAcrossExperiments) {
  // GPU 99 flagged in both workloads, GPU 98 in only one.
  auto sgemm = healthy_population(40);
  sgemm.push_back(rec(99, 3400.0, 297.0, 61.0));
  sgemm.push_back(rec(98, 3300.0, 297.0, 61.0));
  auto resnet = healthy_population(40);
  resnet.push_back(rec(99, 3500.0, 297.0, 61.0));

  const std::vector<FlagReport> reports{flag_anomalies(frame_from(sgemm)),
                                        flag_anomalies(frame_from(resnet))};
  const auto offenders = repeat_offenders(reports, 2);
  ASSERT_EQ(offenders.size(), 1u);
  EXPECT_EQ(offenders[0].gpu_index, 99u);
  EXPECT_TRUE(offenders[0].has(FlagReason::kRepeatOffender));
}

TEST(Flagging, ScoreAgainstGroundTruth) {
  Cluster cluster(longhorn_spec());
  const auto truth = cluster.faulty_gpus();
  ASSERT_FALSE(truth.empty());

  FlagReport report;
  // Flag the first two genuinely faulty GPUs plus one healthy one.
  GpuFlag a;
  a.gpu_index = truth[0];
  report.gpus.push_back(a);
  GpuFlag b;
  b.gpu_index = truth[1];
  report.gpus.push_back(b);
  std::size_t healthy = 0;
  while (std::find(truth.begin(), truth.end(), healthy) != truth.end()) {
    ++healthy;
  }
  GpuFlag c;
  c.gpu_index = healthy;
  report.gpus.push_back(c);

  const auto score = score_against_ground_truth(cluster, report);
  EXPECT_EQ(score.true_positives, 2);
  EXPECT_EQ(score.false_positives, 1);
  EXPECT_EQ(score.false_negatives, static_cast<int>(truth.size()) - 2);
  EXPECT_NEAR(score.precision, 2.0 / 3.0, 1e-9);
}

TEST(Flagging, ReasonNames) {
  EXPECT_EQ(to_string(FlagReason::kSlowOutlier), "slow outlier");
  EXPECT_EQ(to_string(FlagReason::kUnexplainedPowerDrop),
            "unexplained power drop");
}

}  // namespace
}  // namespace gpuvar
