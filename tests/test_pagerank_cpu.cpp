#include "hostbench/pagerank_cpu.hpp"
#include "common/rng.hpp"
#include "hostbench/graph.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace gpuvar::host {
namespace {

TEST(PageRank, UniformOnSymmetricCycle) {
  // A directed cycle: perfectly symmetric, so ranks are uniform.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::size_t n = 100;
  for (std::uint32_t u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  const auto g = csr_from_edges(n, std::move(edges));
  const auto res = pagerank(g);
  EXPECT_TRUE(res.converged);
  for (double r : res.rank) EXPECT_NEAR(r, 1.0 / n, 1e-9);
}

TEST(PageRank, RanksSumToOne) {
  Rng rng(1);
  const auto g = random_graph(5000, 5.0, rng);
  const auto res = pagerank(g);
  const double sum =
      std::accumulate(res.rank.begin(), res.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRank, HubReceivesHigherRank) {
  // Everyone points at vertex 0.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::size_t n = 50;
  for (std::uint32_t u = 1; u < n; ++u) edges.emplace_back(u, 0);
  // 0 points back at 1 so it is not dangling.
  edges.emplace_back(0, 1);
  const auto g = csr_from_edges(n, std::move(edges));
  const auto res = pagerank(g);
  for (std::size_t v = 2; v < n; ++v) {
    EXPECT_GT(res.rank[0], res.rank[v]);
  }
}

TEST(PageRank, HandlesDanglingVertices) {
  // Vertex 2 has no outgoing edges; its mass must be redistributed, not
  // lost.
  const auto g = csr_from_edges(3, {{0, 1}, {1, 2}});
  const auto res = pagerank(g);
  const double sum =
      std::accumulate(res.rank.begin(), res.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRank, ParallelMatchesSerial) {
  Rng rng(2);
  const auto g = circuit_graph(20000, 4, 1.5, rng);
  PageRankOptions par, ser;
  par.max_iterations = 20;
  ser.max_iterations = 20;
  ser.parallel = false;
  const auto a = pagerank(g, par);
  const auto b = pagerank(g, ser);
  ASSERT_EQ(a.rank.size(), b.rank.size());
  for (std::size_t i = 0; i < a.rank.size(); i += 371) {
    EXPECT_NEAR(a.rank[i], b.rank[i], 1e-12);
  }
}

TEST(PageRank, ReportsNonConvergenceAtTinyBudget) {
  Rng rng(3);
  const auto g = random_graph(2000, 5.0, rng);
  PageRankOptions opts;
  opts.max_iterations = 1;
  const auto res = pagerank(g, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 1);
  EXPECT_GT(res.final_delta, opts.tolerance);
}

TEST(PageRank, DeltaDecreasesMonotonically) {
  Rng rng(4);
  const auto g = random_graph(2000, 5.0, rng);
  double prev = 1e18;
  for (int iters = 1; iters <= 16; iters *= 2) {
    PageRankOptions opts;
    opts.max_iterations = iters;
    opts.tolerance = 0.0;  // never converge early
    const auto res = pagerank(g, opts);
    EXPECT_LT(res.final_delta, prev);
    prev = res.final_delta;
  }
}

TEST(PageRank, RejectsBadOptions) {
  const auto g = csr_from_edges(2, {{0, 1}});
  PageRankOptions opts;
  opts.damping = 1.5;
  EXPECT_THROW(pagerank(g, opts), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar::host
