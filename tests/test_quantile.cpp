#include "stats/quantile.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace gpuvar::stats {
namespace {

TEST(Quantile, MedianOddSample) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Quantile, MedianEvenSampleInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Quantile, Type7MatchesNumpy) {
  // numpy.percentile([1,2,3,4], 25) == 1.75 (linear / type 7)
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 3.25);
}

TEST(Quantile, ExtremesAreMinMax) {
  const std::vector<double> xs{9.0, 2.0, 7.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 42.0);
}

TEST(Quantile, RejectsOutOfRangeQ) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(Quantile, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(quantile(xs, 0.5), std::invalid_argument);
}

TEST(Quantile, BatchMatchesIndividual) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.5, 9.0, 2.6};
  const std::vector<double> qs{0.1, 0.5, 0.9};
  const auto batch = quantiles(xs, qs);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], quantile(xs, qs[i]));
  }
}

TEST(Quantile, MonotoneInQ) {
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal());
  double prev = quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = quantile(xs, q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Quantile, SortedCopyDoesNotMutateInput) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const auto sorted = sorted_copy(xs);
  EXPECT_EQ(xs[0], 3.0);
  EXPECT_EQ(sorted, (std::vector<double>{1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace gpuvar::stats
