#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gpuvar::stats {
namespace {

TEST(Histogram, BucketsValues) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
}

TEST(Histogram, Fractions) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.7);
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.fraction(3), 1.0 / 3.0);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(1.5);
  h.add(1.6);
  h.add(0.5);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, OfSampleSpansMinMax) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const auto h = histogram_of(xs, 3);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 1.0);
}

TEST(Histogram, OfConstantSampleWidens) {
  const std::vector<double> xs{2.0, 2.0};
  const auto h = histogram_of(xs, 4);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  const auto s = h.render(20);
  EXPECT_NE(s.find("####"), std::string::npos);
  EXPECT_NE(s.find("10"), std::string::npos);
}

}  // namespace
}  // namespace gpuvar::stats
