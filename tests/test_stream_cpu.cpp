#include "hostbench/stream_cpu.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gpuvar::host {
namespace {

TEST(Stream, TriadComputesCorrectly) {
  std::vector<double> a(100), b(100, 2.0), c(100, 3.0);
  triad(a, b, c, 0.5, false);
  for (double v : a) EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(Stream, TriadParallelMatchesSerial) {
  const std::size_t n = 1 << 20;
  std::vector<double> a_par(n), a_ser(n), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<double>(i);
    c[i] = static_cast<double>(n - i);
  }
  triad(a_par, b, c, 2.0, true);
  triad(a_ser, b, c, 2.0, false);
  for (std::size_t i = 0; i < n; i += 10007) {
    EXPECT_DOUBLE_EQ(a_par[i], a_ser[i]);
  }
}

TEST(Stream, CopyCopies) {
  std::vector<double> a(64, 0.0), b(64);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = i * 1.5;
  stream_copy(a, b, false);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Stream, SizeMismatchThrows) {
  std::vector<double> a(4), b(5), c(4);
  EXPECT_THROW(triad(a, b, c, 1.0), std::invalid_argument);
  EXPECT_THROW(stream_copy(a, b), std::invalid_argument);
}

TEST(Stream, TriadBytesFormula) {
  EXPECT_DOUBLE_EQ(triad_bytes(1000), 24000.0);
}

}  // namespace
}  // namespace gpuvar::host
