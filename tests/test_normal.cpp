#include "stats/normal.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace gpuvar::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-4);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
}

TEST(NormalQuantile, RejectsBoundaries) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(FitNormal, RecoversMoments) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  const auto fit = fit_normal(xs);
  EXPECT_NEAR(fit.mean, 10.0, 0.05);
  EXPECT_NEAR(fit.stddev, 2.0, 0.05);
}

TEST(ExpectedNormalMax, GrowsWithN) {
  EXPECT_DOUBLE_EQ(expected_normal_max(1), 0.0);
  const double m10 = expected_normal_max(10);
  const double m100 = expected_normal_max(100);
  const double m27648 = expected_normal_max(27648);
  EXPECT_LT(m10, m100);
  EXPECT_LT(m100, m27648);
  EXPECT_NEAR(m10, 1.54, 0.03);   // Blom approximation for n=10
  EXPECT_NEAR(m27648, 4.0, 0.15); // extreme of ~27k standard normals
}

TEST(ExpectedNormalMax, MatchesEmpiricalMaxima) {
  Rng rng(4);
  const int trials = 2000, n = 50;
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    double mx = -1e9;
    for (int i = 0; i < n; ++i) mx = std::max(mx, rng.normal());
    sum += mx;
  }
  EXPECT_NEAR(sum / trials, expected_normal_max(n), 0.03);
}

TEST(ProjectVariability, LargerClusterShowsMoreVariability) {
  // The paper's Longhorn->Summit projection: more GPUs, wider extremes.
  const NormalFit fit{2500.0, 40.0};
  const double at_416 = project_variability(fit, 416);
  const double at_27648 = project_variability(fit, 27648);
  EXPECT_GT(at_27648, at_416);
  // Longhorn-like spread (sigma/mu = 1.6%) projects to ~9-13% on Summit.
  EXPECT_GT(at_27648, 0.09);
  EXPECT_LT(at_27648, 0.16);
}

TEST(ProjectVariability, ZeroMeanThrows) {
  EXPECT_THROW(project_variability(NormalFit{0.0, 1.0}, 100),
               std::invalid_argument);
}

TEST(ProjectVariability, FromSample) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.normal(2500.0, 40.0));
  const double proj = project_variability(xs, 27648);
  EXPECT_NEAR(proj, project_variability(NormalFit{2500.0, 40.0}, 27648),
              0.01);
}

}  // namespace
}  // namespace gpuvar::stats
