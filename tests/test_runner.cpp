#include "workloads/runner.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gpuvar {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  Cluster cluster_{cloudlab_spec()};
  RunOptions opts_ = RunOptions::for_sku(cluster_.sku());
};

TEST_F(RunnerTest, SingleGpuRunProducesMetrics) {
  const auto w = sgemm_workload(16384, 3);
  const auto r = run_on_gpu(cluster_, 0, w, 0, opts_);
  EXPECT_EQ(r.gpu_index, 0u);
  EXPECT_GT(r.perf_ms, 100.0);
  EXPECT_GT(r.telemetry.freq.median, 1000.0);
  EXPECT_GT(r.telemetry.power.median, 100.0);
  EXPECT_GT(r.telemetry.temp.median, 20.0);
  EXPECT_GT(r.telemetry.energy, Joules{});
  EXPECT_DOUBLE_EQ(r.counters.fu_util, 10.0);
}

TEST_F(RunnerTest, RunsAreDeterministic) {
  const auto w = sgemm_workload(16384, 3);
  const auto a = run_on_gpu(cluster_, 2, w, 1, opts_);
  const auto b = run_on_gpu(cluster_, 2, w, 1, opts_);
  EXPECT_DOUBLE_EQ(a.perf_ms, b.perf_ms);
  EXPECT_DOUBLE_EQ(a.telemetry.power.median, b.telemetry.power.median);
}

TEST_F(RunnerTest, DifferentRunsDifferByNoise) {
  const auto w = sgemm_workload(16384, 3);
  const auto a = run_on_gpu(cluster_, 2, w, 0, opts_);
  const auto b = run_on_gpu(cluster_, 2, w, 1, opts_);
  EXPECT_NE(a.perf_ms, b.perf_ms);
  // ...but only slightly (run noise is small on NVIDIA clusters).
  EXPECT_NEAR(a.perf_ms / b.perf_ms, 1.0, 0.05);
}

TEST_F(RunnerTest, RejectsMultiGpuWorkloadOnSingleGpuApi) {
  EXPECT_THROW(run_on_gpu(cluster_, 0, resnet50_multi_workload(5), 0, opts_),
               std::invalid_argument);
}

TEST_F(RunnerTest, NodeRunOfSingleGpuWorkloadCoversAllGpus) {
  const auto w = pagerank_workload(5);
  const auto results = run_on_node(cluster_, 0, w, 0, opts_);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(results[g].gpu_index, cluster_.index_of(0, static_cast<int>(g)));
  }
}

TEST_F(RunnerTest, MultiGpuJobSharesIterationDurations) {
  const auto w = resnet50_multi_workload(8);
  const auto results = run_on_node(cluster_, 0, w, 0, opts_);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_DOUBLE_EQ(r.perf_ms, results[0].perf_ms);
    ASSERT_EQ(r.iteration_ms.size(), 8u);
    for (std::size_t i = 0; i < r.iteration_ms.size(); ++i) {
      EXPECT_DOUBLE_EQ(r.iteration_ms[i], results[0].iteration_ms[i]);
    }
  }
}

TEST_F(RunnerTest, BulkSyncIterationIsAtLeastSlowestRankPlusAllreduce) {
  auto w = resnet50_multi_workload(5);
  const auto results = run_on_node(cluster_, 1, w, 0, opts_);
  // All iteration durations include the allreduce cost.
  for (double ms : results[0].iteration_ms) {
    EXPECT_GE(ms, to_ms(w.allreduce_seconds));
  }
}

TEST_F(RunnerTest, StragglerGatesWholeNode) {
  // Same node, once with a healthy population and once with one rank
  // slowed via its per-GPU sensitivity: the shared iteration time must
  // track the slowest rank.
  auto fast = resnet50_multi_workload(5);
  auto slow = fast;
  slow.name = fast.name + "-variant";  // different seed path -> new factors
  slow.gpu_sensitivity_sigma = 0.5;    // extreme spread
  const auto fast_res = run_on_node(cluster_, 2, fast, 0, opts_);
  const auto slow_res = run_on_node(cluster_, 2, slow, 0, opts_);
  double max_factor = 0.0;
  for (std::size_t g = 0; g < 4; ++g) {
    max_factor = std::max(
        max_factor, gpu_sensitivity_factor(cluster_, cluster_.index_of(2, g),
                                           slow));
  }
  if (max_factor > 1.2) {
    EXPECT_GT(slow_res[0].perf_ms, fast_res[0].perf_ms * 1.1);
  }
}

TEST_F(RunnerTest, PowerLimitOverrideSlowsGemm) {
  const auto w = sgemm_workload(16384, 3);
  auto capped = opts_;
  capped.power_limit_override = Watts{180.0};
  const auto normal = run_on_gpu(cluster_, 0, w, 0, opts_);
  const auto limited = run_on_gpu(cluster_, 0, w, 0, capped);
  EXPECT_GT(limited.perf_ms, normal.perf_ms * 1.05);
  EXPECT_LE(limited.telemetry.power.median, 182.0);
}

TEST_F(RunnerTest, SeriesCollectionProducesProfilerTrace) {
  const auto w = sgemm_workload(16384, 2);
  auto opts = opts_;
  opts.collect_series = true;
  opts.series_interval = Seconds{0.01};
  const auto r = run_on_gpu(cluster_, 0, w, 0, opts);
  EXPECT_GT(r.series.size(), 50u);
  // Time stamps strictly increasing.
  for (std::size_t i = 1; i < r.series.size(); ++i) {
    EXPECT_GT(r.series[i].t, r.series[i - 1].t);
  }
}

TEST_F(RunnerTest, SensitivityFactorDeterministicAndCentered) {
  const auto w = resnet50_multi_workload(5);
  double sum = 0.0;
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    const double f = gpu_sensitivity_factor(cluster_, i, w);
    EXPECT_DOUBLE_EQ(f, gpu_sensitivity_factor(cluster_, i, w));
    EXPECT_GT(f, 0.7);
    EXPECT_LT(f, 1.4);
    sum += f;
  }
  EXPECT_NEAR(sum / static_cast<double>(cluster_.size()), 1.0, 0.1);
}

TEST_F(RunnerTest, PowerJitterFactorOnlyForJitteryWorkloads) {
  EXPECT_DOUBLE_EQ(gpu_power_jitter_factor(cluster_, 0, sgemm_workload()),
                   1.0);
  const auto w = resnet50_multi_workload(5);
  bool any_off_one = false;
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    if (std::abs(gpu_power_jitter_factor(cluster_, i, w) - 1.0) > 0.01) {
      any_off_one = true;
    }
  }
  EXPECT_TRUE(any_off_one);
}

TEST_F(RunnerTest, WarmupIterationsExcludedFromMetrics) {
  auto w = sgemm_workload(16384, 3);
  w.warmup_iterations = 0;
  const auto no_warmup = run_on_gpu(cluster_, 0, w, 0, opts_);
  w.warmup_iterations = 3;
  const auto with_warmup = run_on_gpu(cluster_, 0, w, 0, opts_);
  // Same measured repetition count either way.
  EXPECT_EQ(no_warmup.iteration_ms.size(), with_warmup.iteration_ms.size());
  // Warmed-up runs are past the DVFS transient: at or slower than the
  // boost-assisted cold run, never faster.
  EXPECT_GE(with_warmup.perf_ms, no_warmup.perf_ms * 0.98);
}

}  // namespace
}  // namespace gpuvar
