#include "gpu/kernel.hpp"
#include "common/units.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"

#include <gtest/gtest.h>

namespace gpuvar {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  GpuSku sku_ = make_v100_sxm2();
  SiliconSample chip_;
};

TEST_F(KernelTest, SgemmFlopsExact) {
  const auto k = make_sgemm_kernel(1024);
  EXPECT_DOUBLE_EQ(k.flops, 2.0 * 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(k.fu_util, 10.0);  // the paper's measured FU util
}

TEST_F(KernelTest, SgemmIsComputeBoundAtPaperSize) {
  const auto k = make_sgemm_kernel(25536);
  EXPECT_LT(memory_boundedness(k, sku_, chip_, MegaHertz{1370.0}), 0.01);
  // Duration at the settled clock is in the paper's 2.3-2.6 s band.
  const double t = kernel_time_at(k, sku_, chip_, MegaHertz{1370.0}).value();
  EXPECT_GT(t, 2.2);
  EXPECT_LT(t, 2.8);
}

TEST_F(KernelTest, ComputeTimeInverseInFrequency) {
  const auto k = make_sgemm_kernel(4096);
  const double t1 = compute_time(k, sku_, MegaHertz{1000.0}).value();
  const double t2 = compute_time(k, sku_, MegaHertz{2000.0}).value();
  EXPECT_NEAR(t1 / t2, 2.0, 1e-9);
}

TEST_F(KernelTest, MemoryTimeIndependentOfFrequency) {
  KernelSpec k;
  k.name = "stream";
  k.bytes = 1e9;
  k.flops = 1.0;
  k.validate();
  EXPECT_DOUBLE_EQ(kernel_time_at(k, sku_, chip_, MegaHertz{1005.0}).value(),
                   kernel_time_at(k, sku_, chip_, MegaHertz{1530.0}).value());
}

TEST_F(KernelTest, RooflineTakesMax) {
  KernelSpec k;
  k.name = "mixed";
  k.flops = 1e12;
  k.bytes = 1e9;
  k.validate();
  const double t = kernel_time_at(k, sku_, chip_, MegaHertz{1400.0}).value();
  EXPECT_DOUBLE_EQ(
      t, std::max(compute_time(k, sku_, MegaHertz{1400.0}), memory_time(k, sku_, chip_)).value());
}

TEST_F(KernelTest, DegradedMemoryBandwidthSlowsMemoryBoundKernel) {
  KernelSpec k;
  k.name = "stream";
  k.bytes = 1e10;
  k.flops = 1.0;
  k.validate();
  SiliconSample degraded = chip_;
  degraded.mem_bw_factor = 0.25;
  EXPECT_NEAR(kernel_time_at(k, sku_, degraded, MegaHertz{1400.0}) /
                  kernel_time_at(k, sku_, chip_, MegaHertz{1400.0}),
              4.0, 1e-6);
}

TEST_F(KernelTest, MemoryBoundednessTransitionsWithFrequency) {
  // A balanced kernel becomes less memory-bound as the clock drops.
  KernelSpec k;
  k.name = "balanced";
  k.flops = 1e12;
  k.compute_efficiency = 1.0;
  k.bw_efficiency = 1.0;
  // Memory time equals compute time at ~1200 MHz.
  k.bytes = 1e12 / sku_.peak_flops(MegaHertz{1200.0}) * (sku_.mem_bw_gbps * 1e9);
  k.validate();
  EXPECT_GT(memory_boundedness(k, sku_, chip_, MegaHertz{1530.0}), 0.0);
  EXPECT_DOUBLE_EQ(memory_boundedness(k, sku_, chip_, MegaHertz{1005.0}), 0.0);
}

TEST_F(KernelTest, EffectiveActivityDropsWhenMemoryBound) {
  KernelSpec k;
  k.name = "stream";
  k.bytes = 1e10;
  k.flops = 1.0;
  k.activity = 0.8;
  k.stall_activity_floor = 0.3;
  k.validate();
  // Fully memory-bound: activity collapses to the floor share.
  EXPECT_NEAR(effective_activity(k, sku_, chip_, MegaHertz{1400.0}), 0.8 * 0.3, 0.01);
}

TEST_F(KernelTest, ComputeBoundKeepsFullActivity) {
  const auto k = make_sgemm_kernel(25536);
  EXPECT_NEAR(effective_activity(k, sku_, chip_, MegaHertz{1400.0}), 1.0, 0.02);
}

TEST_F(KernelTest, ValidateRejectsNonsense) {
  KernelSpec k;
  k.name = "empty";
  EXPECT_THROW(k.validate(), std::invalid_argument);  // no work
  k.flops = 1.0;
  k.activity = 1.5;
  EXPECT_THROW(k.validate(), std::invalid_argument);
  k.activity = 0.5;
  k.fu_util = 11.0;
  EXPECT_THROW(k.validate(), std::invalid_argument);
}

TEST_F(KernelTest, SgemmRejectsTinyMatrices) {
  EXPECT_THROW(make_sgemm_kernel(16), std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
