#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gpuvar {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> hits(50, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, FreeFunctionParallelFor) {
  std::atomic<long> sum{0};
  parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(10000, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10000);
}

TEST(ThreadPool, ThrowingSubmittedTaskDoesNotWedgeThePool) {
  // A task that throws must still decrement the in-flight count —
  // otherwise wait_idle blocks forever. The exception surfaces there.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed and the pool keeps working.
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // Every worker issuing its own parallel_for would block all workers in
  // wait_idle; the pool must detect re-entrancy and run inline.
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for(16, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_FALSE(pool.on_worker_thread());
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, ConcurrentParallelForCallsComplete) {
  // Two client threads driving parallel_for on the same pool at once:
  // completion is per batch, so each call returns exactly when its own
  // chunks finish and both see the full index range.
  ThreadPool pool(4);
  std::atomic<long> a{0};
  std::atomic<long> b{0};
  std::thread ta([&] {
    for (int r = 0; r < 10; ++r) {
      pool.parallel_for(500, [&a](std::size_t) { a.fetch_add(1); });
    }
  });
  std::thread tb([&] {
    for (int r = 0; r < 10; ++r) {
      pool.parallel_for(500, [&b](std::size_t) { b.fetch_add(1); });
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), 10 * 500);
  EXPECT_EQ(b.load(), 10 * 500);
}

TEST(ThreadPool, ConcurrentParallelForErrorsStayWithTheirCall) {
  // Errors are tracked per batch: a throwing parallel_for on one client
  // thread must never surface in a concurrent, non-throwing call.
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> throwing_caught{0};
    std::atomic<int> clean_threw{0};
    std::thread thrower([&] {
      try {
        pool.parallel_for(200, [](std::size_t i) {
          if (i == 101) throw std::runtime_error("mine");
        });
      } catch (const std::runtime_error&) {
        throwing_caught.fetch_add(1);
      }
    });
    std::thread clean([&] {
      try {
        std::atomic<int> n{0};
        pool.parallel_for(200, [&n](std::size_t) { n.fetch_add(1); });
        EXPECT_EQ(n.load(), 200);
      } catch (...) {
        clean_threw.fetch_add(1);
      }
    });
    thrower.join();
    clean.join();
    EXPECT_EQ(throwing_caught.load(), 1);
    EXPECT_EQ(clean_threw.load(), 0);
  }
}

TEST(ThreadPool, StressMixedSubmitAndParallelFor) {
  // TSan workout: concurrent submit/wait_idle/parallel_for traffic from
  // several client threads against one pool, repeated across rounds.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<std::thread> clients;
    clients.reserve(3);
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&pool, &total] {
        for (int i = 0; i < 10; ++i) {
          pool.submit([&total] { total.fetch_add(1); });
        }
      });
    }
    for (auto& t : clients) t.join();
    pool.parallel_for(64, [&total](std::size_t) { total.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(total.load(), 20 * (3 * 10 + 64));
}

}  // namespace
}  // namespace gpuvar
