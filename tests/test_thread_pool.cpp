#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gpuvar {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> hits(50, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, FreeFunctionParallelFor) {
  std::atomic<long> sum{0};
  parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(10000, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10000);
}

}  // namespace
}  // namespace gpuvar
