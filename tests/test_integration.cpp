// End-to-end reproductions of the paper's takeaways at reduced scale.
// The bench binaries regenerate the full figures; these tests assert the
// qualitative *shape* — who varies, what correlates, where cooling helps
// — so a regression in any layer (silicon, DVFS, thermal, workloads,
// analysis) is caught.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gpuvar.hpp"

namespace gpuvar {
namespace {

ExperimentResult sgemm_campaign(const Cluster& cluster, int reps = 10,
                                int runs = 2, double coverage = 1.0) {
  const std::size_t n = cluster.sku().vendor == Vendor::kAmd ? 24576 : 25536;
  auto cfg = default_config(cluster, sgemm_workload(n, reps), runs);
  cfg.node_coverage = coverage;
  return run_experiment(cluster, cfg);
}

TEST(Integration, Takeaway1_LonghornSgemmVariability) {
  Cluster longhorn(longhorn_spec());
  const auto result = sgemm_campaign(longhorn);
  const auto report = analyze_variability(result.frame);
  // ~9% performance variation (we accept 6-16%).
  EXPECT_GT(report.perf.variation_pct, 6.0);
  EXPECT_LT(report.perf.variation_pct, 16.0);
  // GPUs run well below the configured 1530 MHz (1300-1440 band).
  EXPECT_GT(report.freq.box.median, 1280.0);
  EXPECT_LT(report.freq.box.median, 1450.0);
  // Power outliers near 250 W exist.
  EXPECT_LT(report.power.box.min, 265.0);
  // Strong perf-frequency correlation, weak perf-temp correlation.
  const auto corr = correlate_metrics(result.frame);
  EXPECT_LT(corr.perf_freq.rho, -0.9);
  EXPECT_GT(corr.perf_temp.rho, 0.1);
  EXPECT_LT(corr.perf_temp.rho, 0.75);
}

TEST(Integration, Takeaway3_WaterCoolingNarrowsTemperatureOnly) {
  Cluster longhorn(longhorn_spec());
  Cluster vortex(vortex_spec());
  const auto air = analyze_variability(sgemm_campaign(longhorn).frame);
  const auto water = analyze_variability(sgemm_campaign(vortex).frame);
  // Water cooling: clearly narrower temperature IQR and lower median...
  EXPECT_LT(water.temp.box.iqr, 0.7 * air.temp.box.iqr);
  EXPECT_LT(water.temp.box.median, air.temp.box.median - 10.0);
  // ...but performance variation does NOT improve materially.
  EXPECT_GT(water.perf.variation_pct, 0.6 * air.perf.variation_pct);
}

TEST(Integration, Takeaway2_SummitPowerOutliersConcentrated) {
  Cluster summit(summit_spec(0x5077, 8, 29, 2, 6));
  const auto result = sgemm_campaign(summit, 8, 1);
  const auto by_row = variability_by_group(result.frame, GroupBy::kRow);
  ASSERT_EQ(by_row.size(), 8u);
  // Rows 0 (A) and 7 (H) carry the injected power outliers.
  std::size_t outliers_in_targets = by_row.at(0).power.box.outlier_count() +
                                    by_row.at(7).power.box.outlier_count();
  std::size_t outliers_elsewhere = 0;
  for (const auto& [row, rep] : by_row) {
    if (row != 0 && row != 7) {
      outliers_elsewhere += rep.power.box.outlier_count();
    }
  }
  EXPECT_GT(outliers_in_targets, outliers_elsewhere);
  // Power outliers are not explained by temperature: the capped GPUs'
  // temps stay inside the whiskers.
  const auto gpus = per_gpu_medians(result.frame);
  const auto power_box =
      stats::box_summary(metric_column(result.frame, Metric::kPower));
  const auto temp_box =
      stats::box_summary(metric_column(result.frame, Metric::kTemp));
  int unexplained = 0;
  for (const auto& g : gpus) {
    if (g.power_w < power_box.lo_whisker &&
        g.temp_c <= temp_box.hi_whisker) {
      ++unexplained;
    }
  }
  EXPECT_GT(unexplained, 0);
}

TEST(Integration, Takeaway4_CoronaAmdBehavesLikeLonghorn) {
  Cluster corona(corona_spec());
  const auto result = sgemm_campaign(corona);
  const auto report = analyze_variability(result.frame);
  // Similar overall runtime variation band.
  EXPECT_GT(report.perf.variation_pct, 4.0);
  EXPECT_LT(report.perf.variation_pct, 20.0);
  // MI60s never reach their 300 W limit (Fig. 6c).
  EXPECT_LT(report.power.box.max, 300.0);
  // Frequencies sit below the 1800 MHz peak.
  EXPECT_LT(report.freq.box.median, 1700.0);
  // The severe c115-like outlier node exists (~165 W).
  EXPECT_LT(report.power.box.min, 200.0);
}

TEST(Integration, Takeaway5_ResnetVariabilityIsLargestAndAppSpecific) {
  Cluster longhorn(longhorn_spec());
  auto multi_cfg =
      default_config(longhorn, resnet50_multi_workload(30), 1);
  multi_cfg.node_coverage = 0.6;
  const auto multi = run_experiment(longhorn, multi_cfg);
  const auto multi_rep = analyze_variability(multi.frame);

  auto single_cfg =
      default_config(longhorn, resnet50_single_workload(30), 1);
  single_cfg.node_coverage = 0.6;
  const auto single = run_experiment(longhorn, single_cfg);
  const auto single_rep = analyze_variability(single.frame);

  const auto sgemm_rep =
      analyze_variability(sgemm_campaign(longhorn, 8, 1).frame);

  // Multi-GPU ResNet shows the largest performance variability (paper:
  // 22% vs 14% single-GPU vs 9% SGEMM).
  EXPECT_GT(multi_rep.perf.variation_pct, single_rep.perf.variation_pct);
  EXPECT_GT(multi_rep.perf.variation_pct, sgemm_rep.perf.variation_pct);
  EXPECT_GT(multi_rep.perf.variation_pct, 13.0);
  // Frequency pins at boost for ResNet (median at max)...
  EXPECT_NEAR(multi_rep.freq.box.median, 1530.0, 1.0);
  // ...and perf no longer tracks frequency (application-specific).
  const auto corr = correlate_metrics(multi.frame);
  EXPECT_GT(corr.perf_freq.rho, -0.5);
  // Power variability is large for ResNet, tiny for SGEMM.
  EXPECT_GT(multi_rep.power.variation_pct,
            8.0 * sgemm_rep.power.variation_pct);
}

TEST(Integration, Takeaway7and8_MemoryBoundAppsBarelyVary) {
  Cluster longhorn(longhorn_spec());
  for (const auto& w : {lammps_workload(3), pagerank_workload(8)}) {
    auto cfg = default_config(longhorn, w, 1);
    cfg.node_coverage = 0.5;
    const auto result = run_experiment(longhorn, cfg);
    const auto report = analyze_variability(result.frame);
    // Performance variation ~1-3% (paper: <=1%), frequency pinned...
    EXPECT_LT(report.perf.variation_pct, 4.0) << w.name;
    EXPECT_NEAR(report.freq.box.median, 1530.0, 1.0) << w.name;
    // ...but power and temperature still vary significantly.
    EXPECT_GT(report.power.variation_pct, 8.0) << w.name;
    EXPECT_GT(report.temp.box.q3 - report.temp.box.q1, 4.0) << w.name;
  }
}

TEST(Integration, Takeaway6_BertSitsBetweenSgemmAndResnet) {
  Cluster longhorn(longhorn_spec());
  auto cfg = default_config(longhorn, bert_workload(15), 1);
  cfg.node_coverage = 0.6;
  const auto result = run_experiment(longhorn, cfg);
  const auto report = analyze_variability(result.frame);
  EXPECT_GT(report.perf.variation_pct, 3.0);
  EXPECT_LT(report.perf.variation_pct, 15.0);
  EXPECT_GT(report.power.variation_pct, 30.0);  // large power variability
  // Median power clearly below ResNet's (paper: ~40 W lower).
  EXPECT_LT(report.power.box.median, 240.0);
}

TEST(Integration, Takeaway9_VariabilityStableAcrossDays) {
  Cluster vortex(vortex_spec());
  std::vector<double> daily;
  for (int day = 0; day < 3; ++day) {
    auto cfg = default_config(vortex, sgemm_workload(25536, 6), 1);
    cfg.day_of_week = day;
    const auto result = run_experiment(vortex, cfg);
    daily.push_back(
        analyze_variability(result.frame).perf.variation_pct);
  }
  for (double v : daily) {
    EXPECT_NEAR(v, daily[0], 0.35 * daily[0]);
  }
}

TEST(Integration, PowerLimitSweepIncreasesVariability) {
  // §VI-B on CloudLab: lower caps -> slower AND more variable.
  Cluster cloudlab(cloudlab_spec());
  auto run_at = [&](Watts cap) {
    auto cfg = default_config(cloudlab, sgemm_workload(25536, 6), 3);
    cfg.run_options.power_limit_override = cap;
    const auto result = run_experiment(cloudlab, cfg);
    return analyze_variability(result.frame);
  };
  const auto at300 = run_at(Watts{300.0});
  const auto at150 = run_at(Watts{150.0});
  EXPECT_GT(at150.perf.box.median, 1.3 * at300.perf.box.median);
  EXPECT_GT(at150.perf.variation_pct, at300.perf.variation_pct);
}

TEST(Integration, FlaggingRecoversInjectedFaults) {
  Cluster longhorn(longhorn_spec());
  const auto result = sgemm_campaign(longhorn);
  FlagOptions fopts;
  fopts.slowdown_temp = longhorn.sku().slowdown_temp;
  const auto report = flag_anomalies(result.frame, fopts);
  EXPECT_FALSE(report.gpus.empty());

  // Every injected power-cap fault must be flagged (these are the
  // "replace this GPU" cases the paper's operators acted on)...
  std::set<std::size_t> flagged;
  for (const auto& f : report.gpus) flagged.insert(f.gpu_index);
  for (std::size_t i : longhorn.faulty_gpus()) {
    if (longhorn.gpu(i).power_cap > Watts{}) {
      EXPECT_TRUE(flagged.count(i))
          << "capped GPU not flagged: " << longhorn.gpu(i).loc.name;
    }
  }
  // ...and every unexplained-power-drop flag must point at a genuinely
  // capped board, not a thermally throttled one.
  for (const auto& f : report.gpus) {
    if (f.has(FlagReason::kUnexplainedPowerDrop)) {
      EXPECT_GT(longhorn.gpu(f.gpu_index).power_cap, Watts{}) << f.name;
    }
  }
  // The aggregate score is reported but necessarily imperfect: the
  // simulator also produces *organic* anomalies (hot-aisle throttling,
  // bottom-bin silicon) that deserve investigation yet are not injected
  // faults.
  const auto score = score_against_ground_truth(longhorn, report);
  EXPECT_GT(score.recall, 0.1);
}

TEST(Integration, RepeatOffendersAcrossWorkloads) {
  // Paper: 8 of the 10 worst SGEMM GPUs were also ResNet outliers.
  Cluster longhorn(longhorn_spec());
  const auto sgemm_flags = flag_anomalies(sgemm_campaign(longhorn).frame);
  auto cfg = default_config(longhorn, resnet50_multi_workload(25), 1);
  const auto resnet = run_experiment(longhorn, cfg);
  const auto resnet_flags = flag_anomalies(resnet.frame);
  const std::vector<FlagReport> reports{sgemm_flags, resnet_flags};
  const auto offenders = repeat_offenders(reports, 2);
  EXPECT_GE(offenders.size(), 2u);
}

TEST(Integration, PerGpuRepeatabilityOrdersClusters) {
  // Fig 8: Corona's per-GPU noise is an order of magnitude above
  // Summit's/Longhorn's.
  Cluster longhorn(longhorn_spec());
  Cluster corona(corona_spec());
  auto lh = sgemm_campaign(longhorn, 6, 3, 0.4);
  auto co = sgemm_campaign(corona, 6, 3, 0.4);
  const auto lh_rep = per_gpu_repeatability(lh.frame);
  const auto co_rep = per_gpu_repeatability(co.frame);
  std::vector<double> lh_var, co_var;
  for (const auto& r : lh_rep) lh_var.push_back(r.variation_pct);
  for (const auto& r : co_rep) co_var.push_back(r.variation_pct);
  EXPECT_GT(stats::median(co_var), 3.0 * stats::median(lh_var));
  EXPECT_LT(stats::median(lh_var), 2.0);  // paper: 0.44%
}

TEST(Integration, ScaledNormalProjectionFromLonghorn) {
  Cluster longhorn(longhorn_spec());
  const auto result = sgemm_campaign(longhorn);
  const auto proj = project_to_cluster_size(result.frame, 27648);
  // §IV-D: Longhorn projects to slightly above its own variation at
  // Summit scale (the paper reports 9.4%).
  EXPECT_GT(proj.projected_variation_pct, 5.0);
  EXPECT_LT(proj.projected_variation_pct, 25.0);
}

TEST(Integration, SlowAssignmentProbabilityMultiGpuIsHigher) {
  Cluster longhorn(longhorn_spec());
  const auto result = sgemm_campaign(longhorn);
  const double p1 = slow_assignment_probability(result.frame, 1, 0.06);
  const double p4 = slow_assignment_probability(result.frame, 4, 0.06);
  EXPECT_GT(p1, 0.02);
  EXPECT_LT(p1, 0.5);
  EXPECT_GT(p4, p1);
}

}  // namespace
}  // namespace gpuvar
