#include "core/scheduler.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "core/classify.hpp"
#include "gpu/sku.hpp"
#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace gpuvar {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  static std::vector<SchedulerJob> mixed_queue() {
    std::vector<SchedulerJob> jobs;
    jobs.push_back(SchedulerJob{"sgemm", sgemm_workload(25536, 5), 4});
    jobs.push_back(SchedulerJob{"pagerank", pagerank_workload(6), 4});
    jobs.push_back(SchedulerJob{"lammps", lammps_workload(2), 2});
    return jobs;
  }

  Cluster cluster_{cloudlab_spec()};
};

TEST_F(SchedulerTest, PolicyNames) {
  EXPECT_EQ(to_string(PlacementPolicy::kRandom), "random");
  EXPECT_EQ(to_string(PlacementPolicy::kClassAware), "class-aware");
}

TEST_F(SchedulerTest, NodeProfilingCoversAllNodes) {
  const auto quality = profile_node_quality(cluster_, 3);
  ASSERT_EQ(quality.size(), 3u);
  std::set<int> nodes;
  for (const auto& q : quality) {
    nodes.insert(q.node);
    EXPECT_GT(q.median_freq, MegaHertz{1000.0});
    EXPECT_GT(q.median_perf_ms, 0.0);
  }
  EXPECT_EQ(nodes.size(), 3u);
}

TEST_F(SchedulerTest, FasterNodeHasLowerCanaryRuntime) {
  const auto quality = profile_node_quality(cluster_, 3);
  for (const auto& a : quality) {
    for (const auto& b : quality) {
      if (a.median_freq > b.median_freq + MegaHertz{10.0}) {
        EXPECT_LT(a.median_perf_ms, b.median_perf_ms);
      }
    }
  }
}

TEST_F(SchedulerTest, ClassifiesTheStudyWorkloads) {
  const auto sku = make_v100_sxm2();
  EXPECT_EQ(classify_workload(sku, sgemm_workload()),
            AppClass::kComputeBound);
  EXPECT_EQ(classify_workload(sku, pagerank_workload()),
            AppClass::kMemoryLatencyBound);
  EXPECT_EQ(classify_workload(sku, lammps_workload()),
            AppClass::kMemoryBandwidthBound);
  EXPECT_EQ(classify_workload(sku, resnet50_multi_workload()),
            AppClass::kBalanced);
}

TEST_F(SchedulerTest, EveryCopyIsPlaced) {
  const auto quality = profile_node_quality(cluster_, 2);
  const auto outcome = simulate_schedule(cluster_, mixed_queue(),
                                         PlacementPolicy::kRandom, quality);
  EXPECT_EQ(outcome.placements.size(), 10u);
  EXPECT_GT(outcome.makespan_ms, 0.0);
  EXPECT_GE(outcome.total_gpu_ms, outcome.makespan_ms);
}

TEST_F(SchedulerTest, ClassAwareSendsMemoryJobsToSlowNodes) {
  // Small queue: with only 3 nodes, segregation without wrap-around
  // needs <= 2 jobs per class.
  std::vector<SchedulerJob> queue;
  queue.push_back(SchedulerJob{"sgemm", sgemm_workload(25536, 5), 2});
  queue.push_back(SchedulerJob{"pagerank", pagerank_workload(6), 2});
  const auto quality = profile_node_quality(cluster_, 2);
  std::map<int, double> node_freq;
  double fast_f = -1.0, slow_f = 1e18;
  for (const auto& q : quality) {
    node_freq[q.node] = q.median_freq.value();
    fast_f = std::max(fast_f, q.median_freq.value());
    slow_f = std::min(slow_f, q.median_freq.value());
  }
  const auto outcome = simulate_schedule(
      cluster_, queue, PlacementPolicy::kClassAware, quality);
  // Node frequencies can tie (DPM quantization), so assert the pairwise
  // ordering instead of node identities: every clock-sensitive placement
  // sits on a node at least as fast as every memory-bound placement.
  EXPECT_GT(fast_f, 0.0);
  EXPECT_LE(slow_f, fast_f);
  for (const auto& a : outcome.placements) {
    if (a.app_class != AppClass::kComputeBound) continue;
    for (const auto& b : outcome.placements) {
      if (b.app_class == AppClass::kComputeBound) continue;
      EXPECT_GE(node_freq.at(a.node) + 1e-9, node_freq.at(b.node))
          << a.job << " vs " << b.job;
    }
  }
}

TEST_F(SchedulerTest, MemoryBoundJobsRunAtFullSpeedOnSlowNodes) {
  // Takeaway 8 in scheduling form: the class-aware policy's memory-bound
  // placements cost ~nothing versus their best-node runtime.
  const auto quality = profile_node_quality(cluster_, 2);
  const auto aware = simulate_schedule(
      cluster_, mixed_queue(), PlacementPolicy::kClassAware, quality);
  double pr_min = 1e18, pr_max = 0.0;
  for (const auto& p : aware.placements) {
    if (p.job == "pagerank") {
      pr_min = std::min(pr_min, p.wall_ms);
      pr_max = std::max(pr_max, p.wall_ms);
    }
  }
  EXPECT_LT(pr_max / pr_min, 1.05);
}

TEST_F(SchedulerTest, DeterministicForSeed) {
  const auto quality = profile_node_quality(cluster_, 2);
  const auto a = simulate_schedule(cluster_, mixed_queue(),
                                   PlacementPolicy::kRandom, quality, 7);
  const auto b = simulate_schedule(cluster_, mixed_queue(),
                                   PlacementPolicy::kRandom, quality, 7);
  EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
}

TEST_F(SchedulerTest, RejectsBadInput) {
  const auto quality = profile_node_quality(cluster_, 2);
  EXPECT_THROW(simulate_schedule(cluster_, {}, PlacementPolicy::kRandom,
                                 quality),
               std::invalid_argument);
  std::vector<SchedulerJob> bad;
  bad.push_back(SchedulerJob{"x", sgemm_workload(25536, 2), 0});
  EXPECT_THROW(
      simulate_schedule(cluster_, bad, PlacementPolicy::kRandom, quality),
      std::invalid_argument);
}

}  // namespace
}  // namespace gpuvar
