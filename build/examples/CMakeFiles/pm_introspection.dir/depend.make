# Empty dependencies file for pm_introspection.
# This may be replaced when dependencies are built.
