file(REMOVE_RECURSE
  "CMakeFiles/pm_introspection.dir/pm_introspection.cpp.o"
  "CMakeFiles/pm_introspection.dir/pm_introspection.cpp.o.d"
  "pm_introspection"
  "pm_introspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_introspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
