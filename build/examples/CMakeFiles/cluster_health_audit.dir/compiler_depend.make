# Empty compiler generated dependencies file for cluster_health_audit.
# This may be replaced when dependencies are built.
