file(REMOVE_RECURSE
  "CMakeFiles/cluster_health_audit.dir/cluster_health_audit.cpp.o"
  "CMakeFiles/cluster_health_audit.dir/cluster_health_audit.cpp.o.d"
  "cluster_health_audit"
  "cluster_health_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_health_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
