# Empty compiler generated dependencies file for fleet_telemetry_export.
# This may be replaced when dependencies are built.
