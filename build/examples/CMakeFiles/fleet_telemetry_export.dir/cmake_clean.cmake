file(REMOVE_RECURSE
  "CMakeFiles/fleet_telemetry_export.dir/fleet_telemetry_export.cpp.o"
  "CMakeFiles/fleet_telemetry_export.dir/fleet_telemetry_export.cpp.o.d"
  "fleet_telemetry_export"
  "fleet_telemetry_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_telemetry_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
