# Empty dependencies file for powercap_planner.
# This may be replaced when dependencies are built.
