file(REMOVE_RECURSE
  "CMakeFiles/powercap_planner.dir/powercap_planner.cpp.o"
  "CMakeFiles/powercap_planner.dir/powercap_planner.cpp.o.d"
  "powercap_planner"
  "powercap_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powercap_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
