file(REMOVE_RECURSE
  "libgpuvar.a"
)
