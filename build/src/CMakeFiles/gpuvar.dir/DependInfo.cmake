
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/allocator.cpp" "src/CMakeFiles/gpuvar.dir/cluster/allocator.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/cluster/allocator.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/gpuvar.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/faults.cpp" "src/CMakeFiles/gpuvar.dir/cluster/faults.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/cluster/faults.cpp.o.d"
  "/root/repo/src/cluster/tenancy.cpp" "src/CMakeFiles/gpuvar.dir/cluster/tenancy.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/cluster/tenancy.cpp.o.d"
  "/root/repo/src/cluster/topology.cpp" "src/CMakeFiles/gpuvar.dir/cluster/topology.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/cluster/topology.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/gpuvar.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/csv_reader.cpp" "src/CMakeFiles/gpuvar.dir/common/csv_reader.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/common/csv_reader.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/gpuvar.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/gpuvar.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/classify.cpp" "src/CMakeFiles/gpuvar.dir/core/classify.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/classify.cpp.o.d"
  "/root/repo/src/core/cli.cpp" "src/CMakeFiles/gpuvar.dir/core/cli.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/cli.cpp.o.d"
  "/root/repo/src/core/compare.cpp" "src/CMakeFiles/gpuvar.dir/core/compare.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/compare.cpp.o.d"
  "/root/repo/src/core/correlate.cpp" "src/CMakeFiles/gpuvar.dir/core/correlate.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/correlate.cpp.o.d"
  "/root/repo/src/core/drift.cpp" "src/CMakeFiles/gpuvar.dir/core/drift.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/drift.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/gpuvar.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/flagging.cpp" "src/CMakeFiles/gpuvar.dir/core/flagging.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/flagging.cpp.o.d"
  "/root/repo/src/core/globalpm.cpp" "src/CMakeFiles/gpuvar.dir/core/globalpm.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/globalpm.cpp.o.d"
  "/root/repo/src/core/markdown_report.cpp" "src/CMakeFiles/gpuvar.dir/core/markdown_report.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/markdown_report.cpp.o.d"
  "/root/repo/src/core/projection.cpp" "src/CMakeFiles/gpuvar.dir/core/projection.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/projection.cpp.o.d"
  "/root/repo/src/core/record.cpp" "src/CMakeFiles/gpuvar.dir/core/record.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/record.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/gpuvar.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/report.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/gpuvar.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/core/user_impact.cpp" "src/CMakeFiles/gpuvar.dir/core/user_impact.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/user_impact.cpp.o.d"
  "/root/repo/src/core/variability.cpp" "src/CMakeFiles/gpuvar.dir/core/variability.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/core/variability.cpp.o.d"
  "/root/repo/src/gpu/device.cpp" "src/CMakeFiles/gpuvar.dir/gpu/device.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/gpu/device.cpp.o.d"
  "/root/repo/src/gpu/dvfs.cpp" "src/CMakeFiles/gpuvar.dir/gpu/dvfs.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/gpu/dvfs.cpp.o.d"
  "/root/repo/src/gpu/kernel.cpp" "src/CMakeFiles/gpuvar.dir/gpu/kernel.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/gpu/kernel.cpp.o.d"
  "/root/repo/src/gpu/power_model.cpp" "src/CMakeFiles/gpuvar.dir/gpu/power_model.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/gpu/power_model.cpp.o.d"
  "/root/repo/src/gpu/silicon.cpp" "src/CMakeFiles/gpuvar.dir/gpu/silicon.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/gpu/silicon.cpp.o.d"
  "/root/repo/src/gpu/sku.cpp" "src/CMakeFiles/gpuvar.dir/gpu/sku.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/gpu/sku.cpp.o.d"
  "/root/repo/src/hostbench/graph.cpp" "src/CMakeFiles/gpuvar.dir/hostbench/graph.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/hostbench/graph.cpp.o.d"
  "/root/repo/src/hostbench/host_device.cpp" "src/CMakeFiles/gpuvar.dir/hostbench/host_device.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/hostbench/host_device.cpp.o.d"
  "/root/repo/src/hostbench/matrix.cpp" "src/CMakeFiles/gpuvar.dir/hostbench/matrix.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/hostbench/matrix.cpp.o.d"
  "/root/repo/src/hostbench/pagerank_cpu.cpp" "src/CMakeFiles/gpuvar.dir/hostbench/pagerank_cpu.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/hostbench/pagerank_cpu.cpp.o.d"
  "/root/repo/src/hostbench/sgemm_cpu.cpp" "src/CMakeFiles/gpuvar.dir/hostbench/sgemm_cpu.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/hostbench/sgemm_cpu.cpp.o.d"
  "/root/repo/src/hostbench/spmv_cpu.cpp" "src/CMakeFiles/gpuvar.dir/hostbench/spmv_cpu.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/hostbench/spmv_cpu.cpp.o.d"
  "/root/repo/src/hostbench/stream_cpu.cpp" "src/CMakeFiles/gpuvar.dir/hostbench/stream_cpu.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/hostbench/stream_cpu.cpp.o.d"
  "/root/repo/src/stats/ascii_plot.cpp" "src/CMakeFiles/gpuvar.dir/stats/ascii_plot.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/stats/ascii_plot.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/CMakeFiles/gpuvar.dir/stats/bootstrap.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/stats/bootstrap.cpp.o.d"
  "/root/repo/src/stats/boxplot.cpp" "src/CMakeFiles/gpuvar.dir/stats/boxplot.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/stats/boxplot.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/CMakeFiles/gpuvar.dir/stats/correlation.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/stats/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/gpuvar.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/gpuvar.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/CMakeFiles/gpuvar.dir/stats/normal.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/stats/normal.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/CMakeFiles/gpuvar.dir/stats/quantile.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/stats/quantile.cpp.o.d"
  "/root/repo/src/stats/sampling.cpp" "src/CMakeFiles/gpuvar.dir/stats/sampling.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/stats/sampling.cpp.o.d"
  "/root/repo/src/telemetry/counters.cpp" "src/CMakeFiles/gpuvar.dir/telemetry/counters.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/telemetry/counters.cpp.o.d"
  "/root/repo/src/telemetry/export.cpp" "src/CMakeFiles/gpuvar.dir/telemetry/export.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/telemetry/export.cpp.o.d"
  "/root/repo/src/telemetry/pmapi.cpp" "src/CMakeFiles/gpuvar.dir/telemetry/pmapi.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/telemetry/pmapi.cpp.o.d"
  "/root/repo/src/telemetry/sampler.cpp" "src/CMakeFiles/gpuvar.dir/telemetry/sampler.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/telemetry/sampler.cpp.o.d"
  "/root/repo/src/telemetry/timeseries.cpp" "src/CMakeFiles/gpuvar.dir/telemetry/timeseries.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/telemetry/timeseries.cpp.o.d"
  "/root/repo/src/thermal/cooling.cpp" "src/CMakeFiles/gpuvar.dir/thermal/cooling.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/thermal/cooling.cpp.o.d"
  "/root/repo/src/thermal/thermal.cpp" "src/CMakeFiles/gpuvar.dir/thermal/thermal.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/thermal/thermal.cpp.o.d"
  "/root/repo/src/workloads/bert.cpp" "src/CMakeFiles/gpuvar.dir/workloads/bert.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/workloads/bert.cpp.o.d"
  "/root/repo/src/workloads/lammps.cpp" "src/CMakeFiles/gpuvar.dir/workloads/lammps.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/workloads/lammps.cpp.o.d"
  "/root/repo/src/workloads/pagerank.cpp" "src/CMakeFiles/gpuvar.dir/workloads/pagerank.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/workloads/pagerank.cpp.o.d"
  "/root/repo/src/workloads/resnet.cpp" "src/CMakeFiles/gpuvar.dir/workloads/resnet.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/workloads/resnet.cpp.o.d"
  "/root/repo/src/workloads/runner.cpp" "src/CMakeFiles/gpuvar.dir/workloads/runner.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/workloads/runner.cpp.o.d"
  "/root/repo/src/workloads/sgemm.cpp" "src/CMakeFiles/gpuvar.dir/workloads/sgemm.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/workloads/sgemm.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/gpuvar.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/gpuvar.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
