# Empty compiler generated dependencies file for gpuvar.
# This may be replaced when dependencies are built.
