file(REMOVE_RECURSE
  "CMakeFiles/gpuvar_cli.dir/gpuvar_cli.cpp.o"
  "CMakeFiles/gpuvar_cli.dir/gpuvar_cli.cpp.o.d"
  "gpuvar"
  "gpuvar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuvar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
