# Empty dependencies file for gpuvar_cli.
# This may be replaced when dependencies are built.
