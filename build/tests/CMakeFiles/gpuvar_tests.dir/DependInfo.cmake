
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocator.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_allocator.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_allocator.cpp.o.d"
  "/root/repo/tests/test_ascii_plot.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_ascii_plot.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_ascii_plot.cpp.o.d"
  "/root/repo/tests/test_bootstrap.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_bootstrap.cpp.o.d"
  "/root/repo/tests/test_boxplot.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_boxplot.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_boxplot.cpp.o.d"
  "/root/repo/tests/test_classify.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_classify.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_classify.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_compare.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_compare.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_compare.cpp.o.d"
  "/root/repo/tests/test_cooling.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_cooling.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_cooling.cpp.o.d"
  "/root/repo/tests/test_correlate.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_correlate.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_correlate.cpp.o.d"
  "/root/repo/tests/test_correlation.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_correlation.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_correlation.cpp.o.d"
  "/root/repo/tests/test_counters.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_counters.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_counters.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_csv_reader.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_csv_reader.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_csv_reader.cpp.o.d"
  "/root/repo/tests/test_descriptive.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_descriptive.cpp.o.d"
  "/root/repo/tests/test_device.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_device.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_device.cpp.o.d"
  "/root/repo/tests/test_drift.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_drift.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_drift.cpp.o.d"
  "/root/repo/tests/test_dvfs.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_dvfs.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_dvfs.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_export.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_export.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_export.cpp.o.d"
  "/root/repo/tests/test_faults.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_faults.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_faults.cpp.o.d"
  "/root/repo/tests/test_flagging.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_flagging.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_flagging.cpp.o.d"
  "/root/repo/tests/test_globalpm.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_globalpm.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_globalpm.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_host_device.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_host_device.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_host_device.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_markdown_report.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_markdown_report.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_markdown_report.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_normal.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_normal.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_normal.cpp.o.d"
  "/root/repo/tests/test_pagerank_cpu.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_pagerank_cpu.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_pagerank_cpu.cpp.o.d"
  "/root/repo/tests/test_pmapi.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_pmapi.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_pmapi.cpp.o.d"
  "/root/repo/tests/test_power_model.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_power_model.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_power_model.cpp.o.d"
  "/root/repo/tests/test_projection.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_projection.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_projection.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_quantile.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_quantile.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_quantile.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_sampler.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_sampler.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_sampler.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_sgemm_cpu.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_sgemm_cpu.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_sgemm_cpu.cpp.o.d"
  "/root/repo/tests/test_silicon.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_silicon.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_silicon.cpp.o.d"
  "/root/repo/tests/test_sku.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_sku.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_sku.cpp.o.d"
  "/root/repo/tests/test_spmv_cpu.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_spmv_cpu.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_spmv_cpu.cpp.o.d"
  "/root/repo/tests/test_stream_cpu.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_stream_cpu.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_stream_cpu.cpp.o.d"
  "/root/repo/tests/test_tenancy.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_tenancy.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_tenancy.cpp.o.d"
  "/root/repo/tests/test_thermal.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_thermal.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_thermal.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_user_impact.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_user_impact.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_user_impact.cpp.o.d"
  "/root/repo/tests/test_variability.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_variability.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_variability.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/gpuvar_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/gpuvar_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuvar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
