# Empty compiler generated dependencies file for gpuvar_tests.
# This may be replaced when dependencies are built.
