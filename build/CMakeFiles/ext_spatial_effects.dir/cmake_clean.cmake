file(REMOVE_RECURSE
  "CMakeFiles/ext_spatial_effects.dir/bench/ext_spatial_effects.cpp.o"
  "CMakeFiles/ext_spatial_effects.dir/bench/ext_spatial_effects.cpp.o.d"
  "bench/ext_spatial_effects"
  "bench/ext_spatial_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spatial_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
