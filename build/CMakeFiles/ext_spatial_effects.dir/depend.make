# Empty dependencies file for ext_spatial_effects.
# This may be replaced when dependencies are built.
