# Empty dependencies file for abl_cooling_swap.
# This may be replaced when dependencies are built.
