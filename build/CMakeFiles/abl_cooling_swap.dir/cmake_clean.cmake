file(REMOVE_RECURSE
  "CMakeFiles/abl_cooling_swap.dir/bench/abl_cooling_swap.cpp.o"
  "CMakeFiles/abl_cooling_swap.dir/bench/abl_cooling_swap.cpp.o.d"
  "bench/abl_cooling_swap"
  "bench/abl_cooling_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cooling_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
