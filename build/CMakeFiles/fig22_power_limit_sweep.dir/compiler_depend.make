# Empty compiler generated dependencies file for fig22_power_limit_sweep.
# This may be replaced when dependencies are built.
