file(REMOVE_RECURSE
  "CMakeFiles/fig22_power_limit_sweep.dir/bench/fig22_power_limit_sweep.cpp.o"
  "CMakeFiles/fig22_power_limit_sweep.dir/bench/fig22_power_limit_sweep.cpp.o.d"
  "bench/fig22_power_limit_sweep"
  "bench/fig22_power_limit_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_power_limit_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
