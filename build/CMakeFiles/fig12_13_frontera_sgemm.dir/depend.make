# Empty dependencies file for fig12_13_frontera_sgemm.
# This may be replaced when dependencies are built.
