file(REMOVE_RECURSE
  "CMakeFiles/fig12_13_frontera_sgemm.dir/bench/fig12_13_frontera_sgemm.cpp.o"
  "CMakeFiles/fig12_13_frontera_sgemm.dir/bench/fig12_13_frontera_sgemm.cpp.o.d"
  "bench/fig12_13_frontera_sgemm"
  "bench/fig12_13_frontera_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_13_frontera_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
