# Empty dependencies file for fig04_05_summit_sgemm.
# This may be replaced when dependencies are built.
