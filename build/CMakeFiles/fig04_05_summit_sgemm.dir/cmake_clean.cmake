file(REMOVE_RECURSE
  "CMakeFiles/fig04_05_summit_sgemm.dir/bench/fig04_05_summit_sgemm.cpp.o"
  "CMakeFiles/fig04_05_summit_sgemm.dir/bench/fig04_05_summit_sgemm.cpp.o.d"
  "bench/fig04_05_summit_sgemm"
  "bench/fig04_05_summit_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_05_summit_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
