# Empty dependencies file for fig06_07_corona_sgemm.
# This may be replaced when dependencies are built.
