file(REMOVE_RECURSE
  "CMakeFiles/fig06_07_corona_sgemm.dir/bench/fig06_07_corona_sgemm.cpp.o"
  "CMakeFiles/fig06_07_corona_sgemm.dir/bench/fig06_07_corona_sgemm.cpp.o.d"
  "bench/fig06_07_corona_sgemm"
  "bench/fig06_07_corona_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_07_corona_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
