file(REMOVE_RECURSE
  "CMakeFiles/fig16_resnet_single.dir/bench/fig16_resnet_single.cpp.o"
  "CMakeFiles/fig16_resnet_single.dir/bench/fig16_resnet_single.cpp.o.d"
  "bench/fig16_resnet_single"
  "bench/fig16_resnet_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_resnet_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
