# Empty dependencies file for fig16_resnet_single.
# This may be replaced when dependencies are built.
