file(REMOVE_RECURSE
  "CMakeFiles/fig01_sgemm_all_clusters.dir/bench/fig01_sgemm_all_clusters.cpp.o"
  "CMakeFiles/fig01_sgemm_all_clusters.dir/bench/fig01_sgemm_all_clusters.cpp.o.d"
  "bench/fig01_sgemm_all_clusters"
  "bench/fig01_sgemm_all_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_sgemm_all_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
