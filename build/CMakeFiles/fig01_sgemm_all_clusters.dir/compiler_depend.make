# Empty compiler generated dependencies file for fig01_sgemm_all_clusters.
# This may be replaced when dependencies are built.
