file(REMOVE_RECURSE
  "CMakeFiles/tab02_workloads.dir/bench/tab02_workloads.cpp.o"
  "CMakeFiles/tab02_workloads.dir/bench/tab02_workloads.cpp.o.d"
  "bench/tab02_workloads"
  "bench/tab02_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
