# Empty compiler generated dependencies file for abl_fastforward.
# This may be replaced when dependencies are built.
