file(REMOVE_RECURSE
  "CMakeFiles/abl_fastforward.dir/bench/abl_fastforward.cpp.o"
  "CMakeFiles/abl_fastforward.dir/bench/abl_fastforward.cpp.o.d"
  "bench/abl_fastforward"
  "bench/abl_fastforward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fastforward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
