file(REMOVE_RECURSE
  "CMakeFiles/fig23_26_summit_rowh.dir/bench/fig23_26_summit_rowh.cpp.o"
  "CMakeFiles/fig23_26_summit_rowh.dir/bench/fig23_26_summit_rowh.cpp.o.d"
  "bench/fig23_26_summit_rowh"
  "bench/fig23_26_summit_rowh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_26_summit_rowh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
