# Empty compiler generated dependencies file for fig23_26_summit_rowh.
# This may be replaced when dependencies are built.
