# Empty compiler generated dependencies file for ext_drift_detection.
# This may be replaced when dependencies are built.
