file(REMOVE_RECURSE
  "CMakeFiles/ext_drift_detection.dir/bench/ext_drift_detection.cpp.o"
  "CMakeFiles/ext_drift_detection.dir/bench/ext_drift_detection.cpp.o.d"
  "bench/ext_drift_detection"
  "bench/ext_drift_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_drift_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
