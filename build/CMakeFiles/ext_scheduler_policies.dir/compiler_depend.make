# Empty compiler generated dependencies file for ext_scheduler_policies.
# This may be replaced when dependencies are built.
