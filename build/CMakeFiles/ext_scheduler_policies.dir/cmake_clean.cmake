file(REMOVE_RECURSE
  "CMakeFiles/ext_scheduler_policies.dir/bench/ext_scheduler_policies.cpp.o"
  "CMakeFiles/ext_scheduler_policies.dir/bench/ext_scheduler_policies.cpp.o.d"
  "bench/ext_scheduler_policies"
  "bench/ext_scheduler_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scheduler_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
