file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_resnet_multi.dir/bench/fig14_15_resnet_multi.cpp.o"
  "CMakeFiles/fig14_15_resnet_multi.dir/bench/fig14_15_resnet_multi.cpp.o.d"
  "bench/fig14_15_resnet_multi"
  "bench/fig14_15_resnet_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_resnet_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
