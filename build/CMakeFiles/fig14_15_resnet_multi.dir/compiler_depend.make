# Empty compiler generated dependencies file for fig14_15_resnet_multi.
# This may be replaced when dependencies are built.
