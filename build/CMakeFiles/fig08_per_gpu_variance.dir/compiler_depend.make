# Empty compiler generated dependencies file for fig08_per_gpu_variance.
# This may be replaced when dependencies are built.
