file(REMOVE_RECURSE
  "CMakeFiles/fig08_per_gpu_variance.dir/bench/fig08_per_gpu_variance.cpp.o"
  "CMakeFiles/fig08_per_gpu_variance.dir/bench/fig08_per_gpu_variance.cpp.o.d"
  "bench/fig08_per_gpu_variance"
  "bench/fig08_per_gpu_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_per_gpu_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
