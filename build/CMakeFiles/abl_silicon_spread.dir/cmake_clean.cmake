file(REMOVE_RECURSE
  "CMakeFiles/abl_silicon_spread.dir/bench/abl_silicon_spread.cpp.o"
  "CMakeFiles/abl_silicon_spread.dir/bench/abl_silicon_spread.cpp.o.d"
  "bench/abl_silicon_spread"
  "bench/abl_silicon_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_silicon_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
