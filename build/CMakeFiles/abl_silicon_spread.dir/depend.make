# Empty dependencies file for abl_silicon_spread.
# This may be replaced when dependencies are built.
