file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_bench.dir/bench/micro_sim_bench.cpp.o"
  "CMakeFiles/micro_sim_bench.dir/bench/micro_sim_bench.cpp.o.d"
  "bench/micro_sim_bench"
  "bench/micro_sim_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
