# Empty dependencies file for micro_sim_bench.
# This may be replaced when dependencies are built.
