file(REMOVE_RECURSE
  "CMakeFiles/micro_hostkernels_bench.dir/bench/micro_hostkernels_bench.cpp.o"
  "CMakeFiles/micro_hostkernels_bench.dir/bench/micro_hostkernels_bench.cpp.o.d"
  "bench/micro_hostkernels_bench"
  "bench/micro_hostkernels_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hostkernels_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
