# Empty dependencies file for micro_hostkernels_bench.
# This may be replaced when dependencies are built.
