file(REMOVE_RECURSE
  "CMakeFiles/fig18_lammps.dir/bench/fig18_lammps.cpp.o"
  "CMakeFiles/fig18_lammps.dir/bench/fig18_lammps.cpp.o.d"
  "bench/fig18_lammps"
  "bench/fig18_lammps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_lammps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
