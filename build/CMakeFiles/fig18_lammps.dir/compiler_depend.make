# Empty compiler generated dependencies file for fig18_lammps.
# This may be replaced when dependencies are built.
