file(REMOVE_RECURSE
  "CMakeFiles/fig09_10_vortex_sgemm.dir/bench/fig09_10_vortex_sgemm.cpp.o"
  "CMakeFiles/fig09_10_vortex_sgemm.dir/bench/fig09_10_vortex_sgemm.cpp.o.d"
  "bench/fig09_10_vortex_sgemm"
  "bench/fig09_10_vortex_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_vortex_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
