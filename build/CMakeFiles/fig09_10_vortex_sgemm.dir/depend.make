# Empty dependencies file for fig09_10_vortex_sgemm.
# This may be replaced when dependencies are built.
