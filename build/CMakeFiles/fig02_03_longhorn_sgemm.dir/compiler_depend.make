# Empty compiler generated dependencies file for fig02_03_longhorn_sgemm.
# This may be replaced when dependencies are built.
