file(REMOVE_RECURSE
  "CMakeFiles/fig02_03_longhorn_sgemm.dir/bench/fig02_03_longhorn_sgemm.cpp.o"
  "CMakeFiles/fig02_03_longhorn_sgemm.dir/bench/fig02_03_longhorn_sgemm.cpp.o.d"
  "bench/fig02_03_longhorn_sgemm"
  "bench/fig02_03_longhorn_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_03_longhorn_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
