file(REMOVE_RECURSE
  "CMakeFiles/fig19_pagerank.dir/bench/fig19_pagerank.cpp.o"
  "CMakeFiles/fig19_pagerank.dir/bench/fig19_pagerank.cpp.o.d"
  "bench/fig19_pagerank"
  "bench/fig19_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
