# Empty compiler generated dependencies file for fig19_pagerank.
# This may be replaced when dependencies are built.
