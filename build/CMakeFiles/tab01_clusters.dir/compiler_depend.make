# Empty compiler generated dependencies file for tab01_clusters.
# This may be replaced when dependencies are built.
