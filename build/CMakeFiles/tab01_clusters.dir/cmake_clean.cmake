file(REMOVE_RECURSE
  "CMakeFiles/tab01_clusters.dir/bench/tab01_clusters.cpp.o"
  "CMakeFiles/tab01_clusters.dir/bench/tab01_clusters.cpp.o.d"
  "bench/tab01_clusters"
  "bench/tab01_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
