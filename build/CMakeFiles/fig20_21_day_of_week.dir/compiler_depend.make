# Empty compiler generated dependencies file for fig20_21_day_of_week.
# This may be replaced when dependencies are built.
