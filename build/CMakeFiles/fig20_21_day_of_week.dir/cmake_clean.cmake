file(REMOVE_RECURSE
  "CMakeFiles/fig20_21_day_of_week.dir/bench/fig20_21_day_of_week.cpp.o"
  "CMakeFiles/fig20_21_day_of_week.dir/bench/fig20_21_day_of_week.cpp.o.d"
  "bench/fig20_21_day_of_week"
  "bench/fig20_21_day_of_week.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_21_day_of_week.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
