# Empty dependencies file for ext_global_pm.
# This may be replaced when dependencies are built.
