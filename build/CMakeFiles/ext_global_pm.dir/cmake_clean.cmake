file(REMOVE_RECURSE
  "CMakeFiles/ext_global_pm.dir/bench/ext_global_pm.cpp.o"
  "CMakeFiles/ext_global_pm.dir/bench/ext_global_pm.cpp.o.d"
  "bench/ext_global_pm"
  "bench/ext_global_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_global_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
