# Empty compiler generated dependencies file for micro_stats_bench.
# This may be replaced when dependencies are built.
