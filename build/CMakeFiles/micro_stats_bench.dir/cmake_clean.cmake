file(REMOVE_RECURSE
  "CMakeFiles/micro_stats_bench.dir/bench/micro_stats_bench.cpp.o"
  "CMakeFiles/micro_stats_bench.dir/bench/micro_stats_bench.cpp.o.d"
  "bench/micro_stats_bench"
  "bench/micro_stats_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stats_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
