# Empty compiler generated dependencies file for fig17_bert.
# This may be replaced when dependencies are built.
