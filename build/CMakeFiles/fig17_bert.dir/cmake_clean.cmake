file(REMOVE_RECURSE
  "CMakeFiles/fig17_bert.dir/bench/fig17_bert.cpp.o"
  "CMakeFiles/fig17_bert.dir/bench/fig17_bert.cpp.o.d"
  "bench/fig17_bert"
  "bench/fig17_bert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_bert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
