# Empty dependencies file for fig11_vortex_timeseries.
# This may be replaced when dependencies are built.
