file(REMOVE_RECURSE
  "CMakeFiles/fig11_vortex_timeseries.dir/bench/fig11_vortex_timeseries.cpp.o"
  "CMakeFiles/fig11_vortex_timeseries.dir/bench/fig11_vortex_timeseries.cpp.o.d"
  "bench/fig11_vortex_timeseries"
  "bench/fig11_vortex_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vortex_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
